module Circuit = Spsta_netlist.Circuit
module Discrete = Spsta_dist.Discrete

type t = {
  p_idle : float;
  dist : Discrete.t;
  criticality : (Circuit.id * float) list;
}

let compute ?(dt = 0.05) ?gate_delay ?delay_of circuit ~spec =
  let module B = (val Top.discrete_backend ~dt () : Top.BACKEND with type top = Discrete.t) in
  let module A = Analyzer.Make (B) in
  let result = A.analyze ?gate_delay ?delay_of circuit ~spec in
  let endpoints = Circuit.endpoints circuit in
  (* per endpoint: combined (rise + fall) transition mass over time *)
  let tops =
    List.map
      (fun e ->
        let s = A.signal result e in
        (e, Discrete.add s.A.rise s.A.fall))
      endpoints
  in
  let p_idle =
    List.fold_left (fun acc (_, top) -> acc *. (1.0 -. Discrete.total top)) 1.0 tops
  in
  (* common grid covering every endpoint's support *)
  let series = List.map (fun (e, top) -> (e, Discrete.series top)) tops in
  let times =
    List.concat_map (fun (_, s) -> List.map fst s) series |> List.sort_uniq compare
  in
  match times with
  | [] ->
    { p_idle = 1.0; dist = Discrete.zero ~dt; criticality = List.map (fun (e, _) -> (e, 0.0)) tops }
  | _ ->
    (* settled-by-t cdf per endpoint, evaluated on the merged grid *)
    let settled_by (_, top) t = 1.0 -. (Discrete.total top -. Discrete.cdf top t) in
    let chip_cdf t = List.fold_left (fun acc et -> acc *. settled_by et t) 1.0 tops in
    let mass_points =
      let previous = ref p_idle in
      List.map
        (fun t ->
          let f = chip_cdf t in
          let m = Float.max (f -. !previous) 0.0 in
          previous := f;
          (t, m))
        times
    in
    let dist = Discrete.of_points ~dt mass_points in
    (* criticality: P(endpoint e transitions at t and everyone else has
       settled by t); grid approximation, ties split arbitrarily *)
    let raw_criticality =
      List.map
        (fun (e, top) ->
          let others = List.filter (fun (e', _) -> e' <> e) tops in
          let total =
            List.fold_left
              (fun acc (t, m) ->
                if m <= 0.0 then acc
                else acc +. (m *. List.fold_left (fun p et -> p *. settled_by et t) 1.0 others))
              0.0 (Discrete.series top)
          in
          (e, total))
        tops
    in
    let norm = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 raw_criticality in
    let criticality =
      if norm <= 0.0 then raw_criticality
      else List.map (fun (e, c) -> (e, c /. norm)) raw_criticality
    in
    { p_idle; dist; criticality = List.sort (fun (_, a) (_, b) -> compare b a) criticality }

let p_idle t = t.p_idle
let distribution t = t.dist
let mean t = Discrete.mean t.dist
let stddev t = Discrete.stddev t.dist

let yield_at t threshold = t.p_idle +. Discrete.cdf t.dist threshold

let clock_for_yield t target =
  if not (target > 0.0 && target <= 1.0) then
    invalid_arg "Chip_delay.clock_for_yield: target outside (0,1]";
  if t.p_idle >= target then
    match Discrete.series t.dist with
    | (first, _) :: _ -> first
    | [] -> 0.0
  else begin
    let rec scan = function
      | [] -> invalid_arg "Chip_delay.clock_for_yield: target unreachable on grid"
      | (time, _) :: rest -> if yield_at t time >= target then time else scan rest
    in
    scan (Discrete.series t.dist)
  end

let endpoint_criticality t = t.criticality
