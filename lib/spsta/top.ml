module Timing_rule = Spsta_logic.Timing_rule
module Normal = Spsta_dist.Normal
module Mixture = Spsta_dist.Mixture
module Discrete = Spsta_dist.Discrete
module Clark = Spsta_dist.Clark

module type BACKEND = sig
  type top

  val empty : top
  val of_normal : weight:float -> Normal.t -> top
  val total : top -> float
  val scale : top -> float -> top
  val add : top -> top -> top
  val shift : top -> float -> top
  val convolve_normal : top -> Normal.t -> top
  val combine : Timing_rule.t -> top list -> top
  val mean : top -> float
  val stddev : top -> float
  val compact : top -> top
  val dropped : top -> float
  val check : what:string -> top -> (string * string) option

  module Acc : sig
    type t

    val create : unit -> t
    val add : t -> top -> unit
    val to_top : t -> top
  end
end

module Moment_backend : BACKEND with type top = Mixture.t = struct
  type top = Mixture.t

  let empty = Mixture.empty
  let of_normal ~weight dist = Mixture.singleton ~weight dist
  let total = Mixture.total_weight
  let scale = Mixture.scale
  let add = Mixture.add
  let shift = Mixture.add_delay
  let convolve_normal = Mixture.add_normal_delay

  (* moment-match each operand's normalised mixture to a normal, then
     Clark-fold; exact for single operands *)
  let combine rule tops =
    let as_normal top =
      match Mixture.as_normal top with
      | Some n -> n
      | None -> invalid_arg "Top.Moment_backend.combine: zero-mass operand"
    in
    let normals = List.map as_normal tops in
    let folded =
      match rule with
      | Timing_rule.Max -> Clark.max_normal_many normals
      | Timing_rule.Min -> Clark.min_normal_many normals
    in
    Mixture.singleton ~weight:1.0 folded

  let mean = Mixture.mean
  let stddev = Mixture.stddev
  let compact top = Mixture.compact ~max_components:16 top
  let dropped _ = 0.0
  let check ~what top = Spsta_lint.Invariant.(first (check_mixture ~what top))

  (* mixtures are persistent component lists; the accumulator is just a
     fold cell (Mixture.add is already O(|new components|)) *)
  module Acc = struct
    type t = Mixture.t ref

    let create () = ref Mixture.empty
    let add acc top = acc := Mixture.add !acc top
    let to_top acc = !acc
  end
end

let discrete_backend ?(truncate_eps = 1e-9) ?(cache_normals = true) ~dt () :
    (module BACKEND with type top = Discrete.t) =
  (module struct
    type top = Discrete.t

    let empty = Discrete.zero ~dt
    let of_normal ~weight dist = Discrete.of_normal ~cache:cache_normals ~dt ~mass:weight dist
    let total = Discrete.total
    let scale = Discrete.scale
    let add = Discrete.add
    let shift = Discrete.shift

    let convolve_normal top delay =
      if Discrete.total top <= 0.0 then top
      else Discrete.convolve top (Discrete.of_normal ~cache:cache_normals ~dt ~mass:1.0 delay)

    let combine rule tops =
      match tops with
      | [] -> invalid_arg "Top.discrete_backend.combine: no operands"
      | first :: rest ->
        let op =
          match rule with
          | Timing_rule.Max -> Discrete.max_independent
          | Timing_rule.Min -> Discrete.min_independent
        in
        let normalise top =
          let w = Discrete.total top in
          if w <= 0.0 then invalid_arg "Top.discrete_backend.combine: zero-mass operand";
          Discrete.scale top (1.0 /. w)
        in
        List.fold_left (fun acc top -> op acc (normalise top)) (normalise first) rest

    let mean = Discrete.mean
    let stddev = Discrete.stddev

    (* epsilon-truncation is where deep-circuit supports stop growing:
       each gate output sheds its negligible tails, and the dropped mass
       stays accounted for in Discrete.dropped_mass *)
    let compact top =
      if truncate_eps > 0.0 then Discrete.truncate ~eps:truncate_eps top else top

    let dropped = Discrete.dropped_mass
    let check ~what top = Spsta_lint.Invariant.(first (check_discrete ~what top))

    module Acc = struct
      type t = Discrete.Accum.t

      let create () = Discrete.Accum.create ~dt
      let add = Discrete.Accum.add
      let to_top = Discrete.Accum.to_dist
    end
  end)
