(** Signal transition temporal occurrence probability (t.o.p.) functions
    (paper Definition 3) behind a common interface, so the SPSTA engine
    can run with either representation:

    - {!Moment_backend}: weighted mixtures of normals — fast, carries the
      first two moments exactly through WEIGHTED SUM; MAX/MIN inside a
      multiple-input-switching term is moment-matched (Clark).
    - {!discrete_backend}: mass functions on a uniform time grid — slower
      but captures arbitrary shapes (Fig. 4) with an exact lattice
      MAX/MIN. *)

module type BACKEND = sig
  type top
  (** A t.o.p. function: a non-negative measure over time whose total
      mass is the transition occurrence probability. *)

  val empty : top
  val of_normal : weight:float -> Spsta_dist.Normal.t -> top
  (** A transition occurring with probability [weight], arriving with
      the given distribution. *)

  val total : top -> float
  val scale : top -> float -> top
  val add : top -> top -> top
  (** WEIGHTED SUM accumulation (eq. 8/11: callers apply the weights via
      {!scale}). *)

  val shift : top -> float -> top
  (** Deterministic gate-delay addition. *)

  val convolve_normal : top -> Spsta_dist.Normal.t -> top
  (** Add an independent normal gate delay (process variation, §1):
      convolution with the delay distribution. *)

  val combine : Spsta_logic.Timing_rule.t -> top list -> top
  (** MIN/MAX of the *normalised* arguments, returned with unit mass —
      the [Max_{x_i in R}] factor of eq. 11.  Inputs with zero mass are
      invalid; raises [Invalid_argument] on an empty list. *)

  val mean : top -> float
  (** Mean of the normalised measure; 0 when empty. *)

  val stddev : top -> float
  val compact : top -> top
  (** Bound representation growth (no-op where not needed). *)

  val dropped : top -> float
  (** Accumulated truncation bound: an upper bound on the mass this
      representation has shed relative to an exact computation (0 for
      exact backends).  The sanitizer admits a total mass up to this
      much below the expected transition probability. *)

  val check : what:string -> top -> (string * string) option
  (** Deep representation validation for the {!Spsta_engine.Propagate.Sanitize}
      wrapper: [None] when healthy, [Some (rule, message)] naming the
      first violated invariant (non-finite moment, negative mass, total
      mass above 1, ...). *)

  (** In-place accumulation of a WEIGHTED SUM chain, bit-identical to
      folding {!add} over the same operands in the same order.  The
      engine keeps one accumulator per output direction while
      enumerating input combinations, so backends can reuse a buffer
      across the (up to 4^fanin) terms instead of allocating per
      term. *)
  module Acc : sig
    type t

    val create : unit -> t
    val add : t -> top -> unit
    val to_top : t -> top
  end
end

module Moment_backend : BACKEND with type top = Spsta_dist.Mixture.t

val discrete_backend :
  ?truncate_eps:float ->
  ?cache_normals:bool ->
  dt:float ->
  unit ->
  (module BACKEND with type top = Spsta_dist.Discrete.t)
(** All values produced by one analysis share the grid step [dt].

    [truncate_eps] (default [1e-9]) epsilon-truncates each gate output's
    tails via {!Spsta_dist.Discrete.truncate}, keeping supports from
    growing with negligible-mass bins on deep circuits; the removed mass
    is tracked in {!Spsta_dist.Discrete.dropped_mass}.  [0.0] disables
    truncation.  [cache_normals] (default [true]) memoises repeated
    normal discretisations (gate-delay kernels, input arrivals). *)
