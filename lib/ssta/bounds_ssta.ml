module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate
module Normal = Spsta_dist.Normal

type band = { times : float array; lower : float array; upper : float array }

type result = { grid : float array; bands : (float array * float array) Propagate.result }

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

(* Sanitizer checker: both tabulated cdf bounds must be monotone
   probabilities and the Frechet band must not invert. *)
let band_check : (float array * float array) Propagate.Sanitize.check =
 fun _circuit _id (lower, upper) ->
  let open Spsta_lint.Invariant in
  match
    first (check_cdf ~what:"lower cdf bound" lower @ check_cdf ~what:"upper cdf bound" upper)
  with
  | Some _ as violation -> violation
  | None ->
    let n = min (Array.length lower) (Array.length upper) in
    let rec scan i =
      if i >= n then None
      else if lower.(i) > upper.(i) +. prob_tolerance then
        Some
          ( "inverted-interval",
            Printf.sprintf "cdf band inverted at grid index %d: lower %.17g > upper %.17g" i
              lower.(i) upper.(i) )
      else scan (i + 1)
    in
    scan 0

let analyze ?(gate_delay = 1.0) ?(dt = 0.1) ?horizon ?(input_arrival = Normal.standard)
    ?check ?domains ?instrument circuit =
  let depth = float_of_int (Circuit.depth circuit) in
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
      (depth *. gate_delay) +. Normal.mean input_arrival +. (6.0 *. Normal.stddev input_arrival)
  in
  let lo = Normal.mean input_arrival -. (6.0 *. Normal.stddev input_arrival) in
  let steps = max 1 (int_of_float (Float.ceil ((horizon -. lo) /. dt))) in
  let grid = Array.init (steps + 1) (fun i -> lo +. (float_of_int i *. dt)) in
  let n_grid = Array.length grid in
  let shift_bins = max 0 (int_of_float (Float.round (gate_delay /. dt))) in
  let source_cdf = Array.map (fun t -> Normal.cdf input_arrival t) grid in
  (* shift a tabulated cdf right by the gate delay: F'(t) = F(t - d) *)
  let shift cdf =
    Array.init n_grid (fun i -> if i < shift_bins then 0.0 else cdf.(i - shift_bins))
  in
  let dom : (module Propagate.DOMAIN with type state = float array * float array) =
    (module struct
      type state = float array * float array

      let source _ = (source_cdf, source_cdf)

      (* Frechet combination of the operand cdf bands, then the delay
         shift: a pure function of the operand slots, so the engine's
         parallel schedule is bit-identical to the sequential sweep *)
      let eval _circuit _g driver operands =
        match driver with
        | Circuit.Gate _ ->
          let k = Array.length operands in
          let lower =
            Array.init n_grid (fun i ->
                let s = Array.fold_left (fun acc band -> acc +. (fst band).(i)) 0.0 operands in
                clamp01 (s -. float_of_int (k - 1)))
          in
          let upper =
            Array.init n_grid (fun i ->
                Array.fold_left (fun acc band -> Float.min acc (snd band).(i)) 1.0 operands)
          in
          (shift lower, shift upper)
        | Circuit.Input | Circuit.Dff_output _ -> assert false
    end)
  in
  let dom =
    if Propagate.Sanitize.resolve check then
      Propagate.Sanitize.wrap ~circuit ~check:band_check dom
    else dom
  in
  let module E = Propagate.Make ((val dom)) in
  { grid; bands = E.run ?domains ?instrument circuit }

let band r id =
  let lower, upper = r.bands.Propagate.per_net.(id) in
  { times = r.grid; lower; upper }

let chip_band r =
  match Circuit.endpoints r.bands.Propagate.circuit with
  | [] -> invalid_arg "Bounds_ssta.chip_band: circuit has no endpoints"
  | endpoints ->
    let n_grid = Array.length r.grid in
    let k = List.length endpoints in
    let lower =
      Array.init n_grid (fun i ->
          let s =
            List.fold_left
              (fun acc e -> acc +. (fst r.bands.Propagate.per_net.(e)).(i))
              0.0 endpoints
          in
          clamp01 (s -. float_of_int (k - 1)))
    in
    let upper =
      Array.init n_grid (fun i ->
          List.fold_left
            (fun acc e -> Float.min acc (snd r.bands.Propagate.per_net.(e)).(i))
            1.0 endpoints)
    in
    { times = r.grid; lower; upper }

let cdf_bounds b t =
  let n = Array.length b.times in
  if n = 0 then (0.0, 1.0)
  else if t < b.times.(0) then (0.0, b.upper.(0))
  else begin
    (* largest grid point <= t *)
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi + 1) / 2 in
        if b.times.(mid) <= t then search mid hi else search lo (mid - 1)
      end
    in
    let i = search 0 (n - 1) in
    (b.lower.(i), b.upper.(i))
  end

let quantile_bounds b p =
  if not (p > 0.0 && p < 1.0) then invalid_arg "Bounds_ssta.quantile_bounds: p outside (0,1)";
  let first_reaching cdf =
    let n = Array.length cdf in
    let rec scan i = if i >= n then None else if cdf.(i) >= p then Some b.times.(i) else scan (i + 1) in
    scan 0
  in
  match (first_reaching b.upper, first_reaching b.lower) with
  | Some optimistic, Some pessimistic -> (optimistic, pessimistic)
  | _, None | None, _ ->
    invalid_arg "Bounds_ssta.quantile_bounds: quantile unreachable on the grid"
