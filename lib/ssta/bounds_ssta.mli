(** Bounds-based statistical STA (the paper's reference [1]:
    Agarwal/Blaauw/Zolotov/Vrudhula, DATE 2003): instead of assuming
    independence at reconvergent MAX operations, propagate *guaranteed*
    lower and upper bounds on each arrival-time cdf using the Frechet
    inequalities

      max(0, sum_i F_i(t) - (n-1))  <=  F_max(t)  <=  min_i F_i(t),

    which hold for any dependence among the inputs.  The true cdf of the
    STA arrival (the MAX-over-paths recursion with shared-path
    correlations) provably lies within the band; the width of the band
    is the price of not knowing the correlations.

    This engine works on the unit-delay timing graph in STA style (every
    source launches one transition); cdfs are tabulated on a uniform
    grid.

    Unlike {!Ssta} and {!Sta}, this analyzer has no flat
    struct-of-arrays fast path: its per-net state is a pair of cdf
    arrays spanning the whole time grid, whose length is chosen at
    analyze time from [dt]/[horizon] — not a small fixed tuple of
    floats that could live in per-moment [floatarray] slots.  It rides
    the generic record engine ({!Spsta_engine.Propagate.Make}), where
    array-valued states are natural. *)

type band = {
  times : float array;  (** grid points, ascending *)
  lower : float array;  (** guaranteed lower bound on the cdf *)
  upper : float array;  (** guaranteed upper bound on the cdf *)
}

type result

val analyze :
  ?gate_delay:float ->
  ?dt:float ->
  ?horizon:float ->
  ?input_arrival:Spsta_dist.Normal.t ->
  ?check:bool ->
  ?domains:int ->
  ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
  Spsta_netlist.Circuit.t ->
  result
(** [dt] (default 0.1) and [horizon] (default: depth + 6 sigma slack)
    define the grid; [input_arrival] defaults to the standard normal.

    Traversal comes from {!Spsta_engine.Propagate}: [domains]
    (default 1) evaluates each logic level's gates across that many
    OCaml domains with results bit-identical to the sequential
    traversal; [instrument] receives per-level gate counts and
    wall-clock timings.  Raises [Invalid_argument] if [domains < 1].

    [check] (default: {!Spsta_engine.Propagate.Sanitize.enabled_by_env})
    verifies both tabulated cdf bounds stay monotone probabilities and
    the Frechet band never inverts, raising
    {!Spsta_engine.Propagate.Sanitize.Violation} otherwise; when off no
    wrapper is installed. *)

val band : result -> Spsta_netlist.Circuit.id -> band

val chip_band : result -> band
(** Bounds on the cdf of the latest endpoint arrival. *)

val cdf_bounds : band -> float -> float * float
(** (lower, upper) bound on P(arrival <= t), step-interpolated. *)

val quantile_bounds : band -> float -> float * float
(** (optimistic, pessimistic) bound on the p-quantile of the arrival:
    the earliest grid time where the upper (resp. lower) cdf bound
    reaches p.  Raises [Invalid_argument] for p outside (0, 1) or when
    the lower bound never reaches p on the grid. *)
