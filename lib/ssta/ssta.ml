module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate
module Gate_kind = Spsta_logic.Gate_kind
module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark

type arrival = { rise : Normal.t; fall : Normal.t }

type result = arrival Propagate.result

let default_input = { rise = Normal.standard; fall = Normal.standard }

(* Base (non-inverted) gate timing: which inputs feed the output rise and
   under which operation.  AND: output rise = MAX of input rises, output
   fall = MIN of input falls; OR is the dual; XOR is direction-agnostic
   and conservatively takes the MAX over both directions of all inputs. *)
let rise_of a = a.rise
let fall_of a = a.fall

let base_arrivals kind (inputs : arrival array) =
  match kind with
  | Gate_kind.Not | Gate_kind.Buf ->
    if Array.length inputs = 1 then (inputs.(0).rise, inputs.(0).fall)
    else invalid_arg "Ssta: NOT/BUF expects one input"
  | Gate_kind.And | Gate_kind.Nand ->
    (Clark.max_normal_map rise_of inputs, Clark.min_normal_map fall_of inputs)
  | Gate_kind.Or | Gate_kind.Nor ->
    (Clark.min_normal_map rise_of inputs, Clark.max_normal_map fall_of inputs)
  | Gate_kind.Xor | Gate_kind.Xnor ->
    let settle = Clark.max_normal_map2 rise_of fall_of inputs in
    (settle, settle)

(* The engine's per-gate transfer function: a pure function of the
   gate's operand arrivals, which is what makes the levelized parallel
   schedule bit-identical to the sequential sweep. *)
let gate_eval ~delay_rf_of _circuit g driver operands =
  match driver with
  | Circuit.Gate { kind; _ } ->
    let base_rise, base_fall = base_arrivals kind operands in
    let rise0, fall0 =
      if Gate_kind.inverting kind then (base_fall, base_rise) else (base_rise, base_fall)
    in
    let d_rise, d_fall = delay_rf_of g in
    { rise = Normal.sum rise0 d_rise; fall = Normal.sum fall0 d_fall }
  | Circuit.Input | Circuit.Dff_output _ -> assert false

let source_of ~input_arrival ~input_arrival_of =
  match input_arrival_of with Some f -> f | None -> fun _ -> input_arrival

(* Sanitizer checker: both direction arrivals must stay finite with
   non-negative sigmas through every SUM / Clark MAX step. *)
let arrival_check : arrival Propagate.Sanitize.check =
 fun _circuit _id a ->
  let open Spsta_lint.Invariant in
  first
    (check_normal ~what:"rise arrival" a.rise @ check_normal ~what:"fall arrival" a.fall)

let domain ~source ~delay_rf_of : (module Propagate.DOMAIN with type state = arrival) =
  (module struct
    type state = arrival

    let source = source
    let eval = gate_eval ~delay_rf_of
  end)

let checked_domain ?check circuit dom =
  if Propagate.Sanitize.resolve check then
    Propagate.Sanitize.wrap ~circuit ~check:arrival_check dom
  else dom

let run ~delay_rf_of ?(input_arrival = default_input) ?input_arrival_of ?check ?domains
    ?instrument circuit =
  let source = source_of ~input_arrival ~input_arrival_of in
  let module D = (val checked_domain ?check circuit (domain ~source ~delay_rf_of)) in
  let module E = Propagate.Make (D) in
  E.run ?domains ?instrument circuit

let analyze ?(gate_delay = 1.0) ?input_arrival ?input_arrival_of ?check ?domains ?instrument
    circuit =
  let delay = Normal.make ~mu:gate_delay ~sigma:0.0 in
  run ~delay_rf_of:(fun _ -> (delay, delay)) ?input_arrival ?input_arrival_of ?check ?domains
    ?instrument circuit

let analyze_variational ~gate_delay ?input_arrival ?input_arrival_of ?check ?domains
    ?instrument circuit =
  run
    ~delay_rf_of:(fun g ->
      let d = gate_delay g in
      (d, d))
    ?input_arrival ?input_arrival_of ?check ?domains ?instrument circuit

let analyze_rf ~delay_rf ?input_arrival ?input_arrival_of ?check ?domains ?instrument circuit =
  let to_normal d = Normal.make ~mu:d ~sigma:0.0 in
  run
    ~delay_rf_of:(fun g ->
      let rise, fall = delay_rf g in
      (to_normal rise, to_normal fall))
    ?input_arrival ?input_arrival_of ?check ?domains ?instrument circuit

let update ?(gate_delay = 1.0) ?(input_arrival = default_input) ?input_arrival_of ?check r
    ~changed =
  let delay = Normal.make ~mu:gate_delay ~sigma:0.0 in
  let source = source_of ~input_arrival ~input_arrival_of in
  let module D =
    (val checked_domain ?check r.Propagate.circuit
           (domain ~source ~delay_rf_of:(fun _ -> (delay, delay))))
  in
  let module E = Propagate.Make (D) in
  E.update r ~changed

let update_rf ~delay_rf ?(input_arrival = default_input) ?input_arrival_of ?check r ~changed =
  let to_normal d = Normal.make ~mu:d ~sigma:0.0 in
  let delay_rf_of g =
    let rise, fall = delay_rf g in
    (to_normal rise, to_normal fall)
  in
  let source = source_of ~input_arrival ~input_arrival_of in
  let module D = (val checked_domain ?check r.Propagate.circuit (domain ~source ~delay_rf_of)) in
  let module E = Propagate.Make (D) in
  E.update r ~changed

let circuit_of (r : result) = r.Propagate.circuit

let arrival (r : result) id = r.Propagate.per_net.(id)

let mean_of direction a =
  match direction with `Rise -> Normal.mean a.rise | `Fall -> Normal.mean a.fall

let critical_endpoint (r : result) direction =
  match Circuit.endpoints r.circuit with
  | [] -> invalid_arg "Ssta.critical_endpoint: circuit has no endpoints"
  | first :: rest ->
    List.fold_left
      (fun best e ->
        if mean_of direction r.per_net.(e) > mean_of direction r.per_net.(best) then e else best)
      first rest

let max_arrival r direction =
  let a = arrival r (critical_endpoint r direction) in
  match direction with `Rise -> a.rise | `Fall -> a.fall
