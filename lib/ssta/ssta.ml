module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark

type arrival = { rise : Normal.t; fall : Normal.t }

type result = { circuit : Circuit.t; per_net : arrival array }

let default_input = { rise = Normal.standard; fall = Normal.standard }

(* Base (non-inverted) gate timing: which inputs feed the output rise and
   under which operation.  AND: output rise = MAX of input rises, output
   fall = MIN of input falls; OR is the dual; XOR is direction-agnostic
   and conservatively takes the MAX over both directions of all inputs. *)
let base_arrivals kind (inputs : arrival list) =
  match kind with
  | Gate_kind.Not | Gate_kind.Buf -> (
    match inputs with
    | [ a ] -> (a.rise, a.fall)
    | [] | _ :: _ -> invalid_arg "Ssta: NOT/BUF expects one input" )
  | Gate_kind.And | Gate_kind.Nand ->
    ( Clark.max_normal_many (List.map (fun a -> a.rise) inputs),
      Clark.min_normal_many (List.map (fun a -> a.fall) inputs) )
  | Gate_kind.Or | Gate_kind.Nor ->
    ( Clark.min_normal_many (List.map (fun a -> a.rise) inputs),
      Clark.max_normal_many (List.map (fun a -> a.fall) inputs) )
  | Gate_kind.Xor | Gate_kind.Xnor ->
    let both = List.concat_map (fun a -> [ a.rise; a.fall ]) inputs in
    let settle = Clark.max_normal_many both in
    (settle, settle)

let run ~delay_rf_of ?(input_arrival = default_input) ?domains circuit =
  let domains =
    match domains with Some d -> Spsta_util.Parallel.check_domains d | None -> 1
  in
  let n = Circuit.num_nets circuit in
  let per_net = Array.make n input_arrival in
  (* pure function of the gate's operand slots: gates within one level
     never feed each other, so a level can run concurrently and the
     parallel schedule is bit-identical to the sequential one *)
  let step g =
    match Circuit.driver circuit g with
    | Circuit.Gate { kind; inputs } ->
      let input_arrivals = Array.to_list (Array.map (fun i -> per_net.(i)) inputs) in
      let base_rise, base_fall = base_arrivals kind input_arrivals in
      let rise0, fall0 =
        if Gate_kind.inverting kind then (base_fall, base_rise) else (base_rise, base_fall)
      in
      let d_rise, d_fall = delay_rf_of g in
      per_net.(g) <- { rise = Normal.sum rise0 d_rise; fall = Normal.sum fall0 d_fall }
    | Circuit.Input | Circuit.Dff_output _ -> assert false
  in
  if domains = 1 then Array.iter step (Circuit.topo_gates circuit)
  else
    Array.iter
      (fun gates ->
        let width = Array.length gates in
        if width < max 16 (2 * domains) then Array.iter step gates
        else
          Spsta_util.Parallel.iter_ranges ~domains width (fun lo hi ->
              for i = lo to hi - 1 do
                step gates.(i)
              done))
      (Circuit.gates_by_level circuit);
  { circuit; per_net }

let analyze ?(gate_delay = 1.0) ?input_arrival ?domains circuit =
  let delay = Normal.make ~mu:gate_delay ~sigma:0.0 in
  run ~delay_rf_of:(fun _ -> (delay, delay)) ?input_arrival ?domains circuit

let analyze_variational ~gate_delay ?input_arrival ?domains circuit =
  run ~delay_rf_of:(fun g -> let d = gate_delay g in (d, d)) ?input_arrival ?domains circuit

let analyze_rf ~delay_rf ?input_arrival ?domains circuit =
  let to_normal d = Normal.make ~mu:d ~sigma:0.0 in
  run
    ~delay_rf_of:(fun g ->
      let rise, fall = delay_rf g in
      (to_normal rise, to_normal fall))
    ?input_arrival ?domains circuit

let arrival r id = r.per_net.(id)

let mean_of direction a =
  match direction with `Rise -> Normal.mean a.rise | `Fall -> Normal.mean a.fall

let critical_endpoint r direction =
  match Circuit.endpoints r.circuit with
  | [] -> invalid_arg "Ssta.critical_endpoint: circuit has no endpoints"
  | first :: rest ->
    List.fold_left
      (fun best e ->
        if mean_of direction r.per_net.(e) > mean_of direction r.per_net.(best) then e else best)
      first rest

let max_arrival r direction =
  let e = critical_endpoint r direction in
  match direction with `Rise -> r.per_net.(e).rise | `Fall -> r.per_net.(e).fall
