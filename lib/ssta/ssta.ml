module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate
module Flat = Spsta_engine.Flat
module Gate_kind = Spsta_logic.Gate_kind
module Normal = Spsta_dist.Normal
module Clark = Spsta_dist.Clark

type arrival = { rise : Normal.t; fall : Normal.t }

(* Two interchangeable engines compute the analysis: the flat
   struct-of-arrays kernel (default — per-net moments in float arrays,
   allocation-free sweeps) and the original record engine over
   [Propagate.Make].  They are bit-identical by construction (the flat
   folds replay the record operation order exactly; the test suite
   asserts Int64-level equality across engines and domain counts), so
   the representation is free to follow whichever engine produced it and
   [arrival] records materialize only at this API boundary. *)
type result = Flat_r of Flat.Ssta.state | Boxed of arrival Propagate.result

let default_input = { rise = Normal.standard; fall = Normal.standard }

(* Base (non-inverted) gate timing: which inputs feed the output rise and
   under which operation.  AND: output rise = MAX of input rises, output
   fall = MIN of input falls; OR is the dual; XOR is direction-agnostic
   and conservatively takes the MAX over both directions of all inputs. *)
let rise_of a = a.rise
let fall_of a = a.fall

let base_arrivals kind (inputs : arrival array) =
  match kind with
  | Gate_kind.Not | Gate_kind.Buf ->
    if Array.length inputs = 1 then (inputs.(0).rise, inputs.(0).fall)
    else invalid_arg "Ssta: NOT/BUF expects one input"
  | Gate_kind.And | Gate_kind.Nand ->
    (Clark.max_normal_map rise_of inputs, Clark.min_normal_map fall_of inputs)
  | Gate_kind.Or | Gate_kind.Nor ->
    (Clark.min_normal_map rise_of inputs, Clark.max_normal_map fall_of inputs)
  | Gate_kind.Xor | Gate_kind.Xnor ->
    let settle = Clark.max_normal_map2 rise_of fall_of inputs in
    (settle, settle)

(* The engine's per-gate transfer function: a pure function of the
   gate's operand arrivals, which is what makes the levelized parallel
   schedule bit-identical to the sequential sweep. *)
let gate_eval ~delay_rf_of _circuit g driver operands =
  match driver with
  | Circuit.Gate { kind; _ } ->
    let base_rise, base_fall = base_arrivals kind operands in
    let rise0, fall0 =
      if Gate_kind.inverting kind then (base_fall, base_rise) else (base_rise, base_fall)
    in
    let d_rise, d_fall = delay_rf_of g in
    { rise = Normal.sum rise0 d_rise; fall = Normal.sum fall0 d_fall }
  | Circuit.Input | Circuit.Dff_output _ -> assert false

let source_of ~input_arrival ~input_arrival_of =
  match input_arrival_of with Some f -> f | None -> fun _ -> input_arrival

(* Sanitizer checker: both direction arrivals must stay finite with
   non-negative sigmas through every SUM / Clark MAX step. *)
let arrival_check : arrival Propagate.Sanitize.check =
 fun _circuit _id a ->
  let open Spsta_lint.Invariant in
  first
    (check_normal ~what:"rise arrival" a.rise @ check_normal ~what:"fall arrival" a.fall)

(* Under a constant mask, a masked gate's output never transitions —
   its arrival is the source statistics of its own net rather than the
   Clark fold of its fan-in, so a folded cone costs one lookup per gate
   and contributes nothing downstream but its launch arrival. *)
let domain ?mask ~source ~delay_rf_of () :
    (module Propagate.DOMAIN with type state = arrival) =
  (module struct
    type state = arrival

    let source = source

    let eval =
      match mask with
      | None -> gate_eval ~delay_rf_of
      | Some m ->
        fun circuit g driver operands ->
          if Bytes.get m g <> '\000' then source g
          else gate_eval ~delay_rf_of circuit g driver operands
  end)

let validate_mask circuit = function
  | None -> ()
  | Some m ->
    if Bytes.length m <> Circuit.num_nets circuit then
      invalid_arg "Ssta: constant_mask length differs from the circuit's net count"

let checked_domain ?check circuit dom =
  if Propagate.Sanitize.resolve check then
    Propagate.Sanitize.wrap ~circuit ~check:arrival_check dom
  else dom

(* --- record engine ------------------------------------------------- *)

let run_record ?mask ~delay_rf_of ~source ?check ?domains ?instrument circuit =
  let module D = (val checked_domain ?check circuit (domain ?mask ~source ~delay_rf_of ())) in
  let module E = Propagate.Make (D) in
  Boxed (E.run ?domains ?instrument circuit)

let update_record ~delay_rf_of ~source ?check r ~changed =
  let module D =
    (val checked_domain ?check r.Propagate.circuit (domain ~source ~delay_rf_of ()))
  in
  let module E = Propagate.Make (D) in
  Boxed (E.update r ~changed)

(* --- flat engine --------------------------------------------------- *)

(* The same per-net invariants ([arrival_check]), applied to the flat
   kernel's float slots without materializing records; the kernel
   locates violations itself. *)
let flat_check check =
  if Propagate.Sanitize.resolve check then
    Some
      (fun rise_mu rise_sig fall_mu fall_sig ->
        let open Spsta_lint.Invariant in
        first
          (check_normal_parts ~what:"rise arrival" ~mean:rise_mu ~sigma:rise_sig
          @ check_normal_parts ~what:"fall arrival" ~mean:fall_mu ~sigma:fall_sig))
  else None

let flat_source source id (b : Flat.rf_buf) =
  let a = source id in
  b.Flat.rise_mu <- Normal.mean a.rise;
  b.rise_sig <- Normal.stddev a.rise;
  b.fall_mu <- Normal.mean a.fall;
  b.fall_sig <- Normal.stddev a.fall

(* Per-gate delay writers, one per entry-point delay shape — the uniform
   [analyze] path writes four constants per gate, no intermediate
   records or tuples at all. *)
let flat_delay_uniform mu (_g : Circuit.id) (b : Flat.rf_buf) =
  b.Flat.rise_mu <- mu;
  b.rise_sig <- 0.0;
  b.fall_mu <- mu;
  b.fall_sig <- 0.0

let flat_delay_variational gate_delay g (b : Flat.rf_buf) =
  let d = gate_delay g in
  b.Flat.rise_mu <- Normal.mean d;
  b.rise_sig <- Normal.stddev d;
  b.fall_mu <- Normal.mean d;
  b.fall_sig <- Normal.stddev d

let flat_delay_rf delay_rf g (b : Flat.rf_buf) =
  let rise, fall = delay_rf g in
  b.Flat.rise_mu <- rise;
  b.rise_sig <- 0.0;
  b.fall_mu <- fall;
  b.fall_sig <- 0.0

let run_flat ~delay ~source ?check ?domains ?instrument circuit =
  Flat_r
    (Flat.Ssta.run ~source:(flat_source source) ~delay ?check:(flat_check check) ?domains
       ?instrument circuit)

(* --- entry points -------------------------------------------------- *)

let analyze ?(gate_delay = 1.0) ?input_arrival ?input_arrival_of ?constant_mask ?check
    ?domains ?instrument ?(engine = `Flat) circuit =
  validate_mask circuit constant_mask;
  let input_arrival = Option.value input_arrival ~default:default_input in
  let source = source_of ~input_arrival ~input_arrival_of in
  match (engine, constant_mask) with
  | `Flat, None ->
    run_flat ~delay:(flat_delay_uniform gate_delay) ~source ?check ?domains ?instrument circuit
  | (`Record, _ | `Flat, Some _) ->
    (* a mask changes the per-gate transfer, which only the record
       engine's first-class domain can express — force it *)
    let delay = Normal.make ~mu:gate_delay ~sigma:0.0 in
    run_record ?mask:constant_mask
      ~delay_rf_of:(fun _ -> (delay, delay))
      ~source ?check ?domains ?instrument circuit

let analyze_variational ~gate_delay ?input_arrival ?input_arrival_of ?check ?domains ?instrument
    ?(engine = `Flat) circuit =
  let input_arrival = Option.value input_arrival ~default:default_input in
  let source = source_of ~input_arrival ~input_arrival_of in
  match engine with
  | `Flat ->
    run_flat ~delay:(flat_delay_variational gate_delay) ~source ?check ?domains ?instrument
      circuit
  | `Record ->
    run_record
      ~delay_rf_of:(fun g ->
        let d = gate_delay g in
        (d, d))
      ~source ?check ?domains ?instrument circuit

let analyze_rf ~delay_rf ?input_arrival ?input_arrival_of ?constant_mask ?check ?domains
    ?instrument ?(engine = `Flat) circuit =
  validate_mask circuit constant_mask;
  let input_arrival = Option.value input_arrival ~default:default_input in
  let source = source_of ~input_arrival ~input_arrival_of in
  match (engine, constant_mask) with
  | `Flat, None ->
    run_flat ~delay:(flat_delay_rf delay_rf) ~source ?check ?domains ?instrument circuit
  | (`Record, _ | `Flat, Some _) ->
    let to_normal d = Normal.make ~mu:d ~sigma:0.0 in
    run_record ?mask:constant_mask
      ~delay_rf_of:(fun g ->
        let rise, fall = delay_rf g in
        (to_normal rise, to_normal fall))
      ~source ?check ?domains ?instrument circuit

(* Updates follow the representation of the result they refine, so a
   record-engine oracle stays on the record engine through a whole
   incremental session and a flat result never pays boxing. *)
let update ?(gate_delay = 1.0) ?(input_arrival = default_input) ?input_arrival_of ?check r
    ~changed =
  let source = source_of ~input_arrival ~input_arrival_of in
  match r with
  | Flat_r st ->
    Flat_r
      (Flat.Ssta.update ~source:(flat_source source) ~delay:(flat_delay_uniform gate_delay)
         ?check:(flat_check check) st ~changed)
  | Boxed br ->
    let delay = Normal.make ~mu:gate_delay ~sigma:0.0 in
    update_record ~delay_rf_of:(fun _ -> (delay, delay)) ~source ?check br ~changed

let update_rf ~delay_rf ?(input_arrival = default_input) ?input_arrival_of ?check r ~changed =
  let source = source_of ~input_arrival ~input_arrival_of in
  match r with
  | Flat_r st ->
    Flat_r
      (Flat.Ssta.update ~source:(flat_source source) ~delay:(flat_delay_rf delay_rf)
         ?check:(flat_check check) st ~changed)
  | Boxed br ->
    let to_normal d = Normal.make ~mu:d ~sigma:0.0 in
    update_record
      ~delay_rf_of:(fun g ->
        let rise, fall = delay_rf g in
        (to_normal rise, to_normal fall))
      ~source ?check br ~changed

(* --- accessors ----------------------------------------------------- *)

let circuit_of = function
  | Flat_r st -> Flat.Ssta.circuit st
  | Boxed r -> r.Propagate.circuit

let arrival r id =
  match r with
  | Boxed r -> r.Propagate.per_net.(id)
  | Flat_r st ->
    {
      rise = Normal.make ~mu:(Flat.Ssta.rise_mean st id) ~sigma:(Flat.Ssta.rise_sigma st id);
      fall = Normal.make ~mu:(Flat.Ssta.fall_mean st id) ~sigma:(Flat.Ssta.fall_sigma st id);
    }

let mean_at r direction id =
  match (r, direction) with
  | Boxed b, `Rise -> Normal.mean b.Propagate.per_net.(id).rise
  | Boxed b, `Fall -> Normal.mean b.Propagate.per_net.(id).fall
  | Flat_r st, `Rise -> Flat.Ssta.rise_mean st id
  | Flat_r st, `Fall -> Flat.Ssta.fall_mean st id

let critical_endpoint r direction =
  match Circuit.endpoints (circuit_of r) with
  | [] -> invalid_arg "Ssta.critical_endpoint: circuit has no endpoints"
  | first :: rest ->
    List.fold_left
      (fun best e -> if mean_at r direction e > mean_at r direction best then e else best)
      first rest

let max_arrival r direction =
  let a = arrival r (critical_endpoint r direction) in
  match direction with `Rise -> a.rise | `Fall -> a.fall
