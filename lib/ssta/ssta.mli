(** Block-based, min/max-separated statistical static timing analysis —
    the paper's baseline (§2.1 and §4).

    Every net carries one normal arrival distribution per transition
    direction.  SUM adds the gate delay (eq. 2); multi-input gates apply
    Clark's moment-matched MAX or MIN (eq. 4) according to the gate logic
    and transition direction; inverting gates swap rise and fall.  Like
    static timing analysis, SSTA assumes a transition always occurs, so
    it is oblivious to input statistics — the property the paper
    criticises.

    Traversal (sequential, levelized-parallel and incremental) comes
    from {!Spsta_engine.Propagate}. *)

type arrival = { rise : Spsta_dist.Normal.t; fall : Spsta_dist.Normal.t }

type result

val analyze :
  ?gate_delay:float ->
  ?input_arrival:arrival ->
  ?input_arrival_of:(Spsta_netlist.Circuit.id -> arrival) ->
  ?constant_mask:Bytes.t ->
  ?check:bool ->
  ?domains:int ->
  ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
  ?engine:[ `Flat | `Record ] ->
  Spsta_netlist.Circuit.t ->
  result
(** [input_arrival] defaults to standard normal for both directions (the
    paper's source statistics); [input_arrival_of] overrides it per
    source net.  [gate_delay] is deterministic and defaults to 1.0.

    [constant_mask] (one byte per net, non-['\000'] = statically
    constant — the shape {!Spsta_analysis.Constprop.mask} produces)
    skips the Clark fold on masked gates: a constant net never
    transitions, so its gate launches with its net's source arrival
    statistics instead of folding its fan-in.  A mask forces the
    [`Record] engine regardless of [engine] (the flat kernel's transfer
    is fixed), and changes results only on masked cones.
    {!update}/{!update_rf} do not take a mask; refine a masked result
    only through mask-free nets.  Raises [Invalid_argument] when the
    mask length differs from the circuit's net count.

    [engine] selects the implementation: [`Flat] (default) runs the
    allocation-free struct-of-arrays kernel ({!Spsta_engine.Flat.Ssta} —
    per-net moments in flat float arrays, records materialized only at
    this module's API), [`Record] the original boxed-record engine over
    {!Spsta_engine.Propagate.Make}.  The two are bit-identical
    (IEEE-exact, asserted in the test suite at every domain count); the
    knob exists as a differential-testing oracle and a fallback.
    {!update}/{!update_rf} stay on the engine that produced their input
    result.

    [domains] (default 1) evaluates each logic level's gates across that
    many OCaml domains; results are bit-identical to the sequential
    traversal at every domain count.  Raises [Invalid_argument] if
    [domains < 1].

    [instrument] receives per-level gate counts and wall-clock timings
    (see {!Spsta_engine.Propagate.level_stat}).

    [check] (default: {!Spsta_engine.Propagate.Sanitize.enabled_by_env})
    verifies every propagated arrival pair stays finite with
    non-negative sigmas, raising
    {!Spsta_engine.Propagate.Sanitize.Violation} naming the circuit,
    net, gate kind and level otherwise; when off no wrapper is
    installed. *)

val analyze_variational :
  gate_delay:(Spsta_netlist.Circuit.id -> Spsta_dist.Normal.t) ->
  ?input_arrival:arrival ->
  ?input_arrival_of:(Spsta_netlist.Circuit.id -> arrival) ->
  ?check:bool ->
  ?domains:int ->
  ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
  ?engine:[ `Flat | `Record ] ->
  Spsta_netlist.Circuit.t ->
  result
(** Same propagation with an independent normal delay per gate — used by
    the process-variation ablation. *)

val analyze_rf :
  delay_rf:(Spsta_netlist.Circuit.id -> float * float) ->
  ?input_arrival:arrival ->
  ?input_arrival_of:(Spsta_netlist.Circuit.id -> arrival) ->
  ?constant_mask:Bytes.t ->
  ?check:bool ->
  ?domains:int ->
  ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
  ?engine:[ `Flat | `Record ] ->
  Spsta_netlist.Circuit.t ->
  result
(** Deterministic but direction-dependent (rise, fall) delays per gate —
    for cell-library timing ({!Spsta_netlist.Cell_library}).
    [constant_mask] behaves as in {!analyze}. *)

val update :
  ?gate_delay:float ->
  ?input_arrival:arrival ->
  ?input_arrival_of:(Spsta_netlist.Circuit.id -> arrival) ->
  ?check:bool ->
  result ->
  changed:Spsta_netlist.Circuit.id list ->
  result
(** Incremental re-analysis: recompute only the fanout cones of the
    [changed] nets (e.g. sources whose arrival statistics changed),
    under the same [gate_delay] as the original {!analyze} and the *new*
    source arrivals.  Matches a full {!analyze} with the new arrivals
    provided nothing outside the cones changed; arrivals outside the
    cones are carried over bit-for-bit from the input result (the
    record engine shares them physically, the flat engine copies the
    slots).  The input [result] is not mutated. *)

val update_rf :
  delay_rf:(Spsta_netlist.Circuit.id -> float * float) ->
  ?input_arrival:arrival ->
  ?input_arrival_of:(Spsta_netlist.Circuit.id -> arrival) ->
  ?check:bool ->
  result ->
  changed:Spsta_netlist.Circuit.id list ->
  result
(** {!update} under per-gate (rise, fall) delays — the incremental
    counterpart of {!analyze_rf}.  [delay_rf] is consulted for every
    dirty gate, so passing a resized gate's output net in [changed]
    re-evaluates it with its new cell ({!Spsta_netlist.Transform.resize_gate}). *)

val circuit_of : result -> Spsta_netlist.Circuit.t

val arrival : result -> Spsta_netlist.Circuit.id -> arrival

val critical_endpoint : result -> [ `Rise | `Fall ] -> Spsta_netlist.Circuit.id
(** Endpoint with the largest mean arrival for the given direction.
    Raises [Invalid_argument] if the circuit has no endpoints. *)

val max_arrival : result -> [ `Rise | `Fall ] -> Spsta_dist.Normal.t
(** Arrival distribution at the {!critical_endpoint}. *)
