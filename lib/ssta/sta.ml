module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate
module Flat = Spsta_engine.Flat

type bounds = { earliest : float; latest : float }

(* Same two-engine split as [Ssta]: the flat struct-of-arrays kernel by
   default, the boxed-record engine as differential oracle — bit
   identical, records materialized at this boundary only. *)
type result = Flat_r of Flat.Sta.state | Boxed of bounds Propagate.result

let default_input = { earliest = 0.0; latest = 0.0 }

let gate_eval ~gate_delay_of _circuit g driver operands =
  match driver with
  | Circuit.Gate _ ->
    let earliest =
      Array.fold_left (fun acc (b : bounds) -> Float.min acc b.earliest) infinity operands
    in
    let latest =
      Array.fold_left (fun acc (b : bounds) -> Float.max acc b.latest) neg_infinity operands
    in
    let gate_delay = gate_delay_of g in
    { earliest = earliest +. gate_delay; latest = latest +. gate_delay }
  | Circuit.Input | Circuit.Dff_output _ -> assert false

let source_of ~input_bounds ~input_bounds_of =
  match input_bounds_of with Some f -> f | None -> fun _ -> input_bounds

(* Sanitizer checker: the [earliest, latest] window must stay a finite,
   ordered interval through every min/max/shift step. *)
let bounds_check : bounds Propagate.Sanitize.check =
 fun _circuit _id b ->
  Spsta_lint.Invariant.(
    first (check_interval ~what:"arrival window" (b.earliest, b.latest)))

let domain ~source ~gate_delay_of : (module Propagate.DOMAIN with type state = bounds) =
  (module struct
    type state = bounds

    let source = source
    let eval = gate_eval ~gate_delay_of
  end)

let checked_domain ?check circuit dom =
  if Propagate.Sanitize.resolve check then
    Propagate.Sanitize.wrap ~circuit ~check:bounds_check dom
  else dom

let resolve_delay ~gate_delay ~gate_delay_of =
  match gate_delay_of with Some f -> f | None -> fun _ -> gate_delay

(* The same window invariant, against the flat kernel's float slots. *)
let flat_check check =
  if Propagate.Sanitize.resolve check then
    Some
      (fun earliest latest ->
        Spsta_lint.Invariant.(first (check_interval ~what:"arrival window" (earliest, latest))))
  else None

let flat_source source id (b : Flat.Sta.buf) =
  let s = source id in
  b.Flat.Sta.b_early <- s.earliest;
  b.b_late <- s.latest

let analyze ?(gate_delay = 1.0) ?gate_delay_of ?(input_bounds = default_input)
    ?input_bounds_of ?check ?domains ?instrument ?(engine = `Flat) circuit =
  let source = source_of ~input_bounds ~input_bounds_of in
  let gate_delay_of = resolve_delay ~gate_delay ~gate_delay_of in
  match engine with
  | `Flat ->
    Flat_r
      (Flat.Sta.run ~source:(flat_source source) ~delay:gate_delay_of
         ?check:(flat_check check) ?domains ?instrument circuit)
  | `Record ->
    let module D = (val checked_domain ?check circuit (domain ~source ~gate_delay_of)) in
    let module E = Propagate.Make (D) in
    Boxed (E.run ?domains ?instrument circuit)

let update ?(gate_delay = 1.0) ?gate_delay_of ?(input_bounds = default_input)
    ?input_bounds_of ?check r ~changed =
  let source = source_of ~input_bounds ~input_bounds_of in
  let gate_delay_of = resolve_delay ~gate_delay ~gate_delay_of in
  match r with
  | Flat_r st ->
    Flat_r
      (Flat.Sta.update ~source:(flat_source source) ~delay:gate_delay_of
         ?check:(flat_check check) st ~changed)
  | Boxed br ->
    let module D =
      (val checked_domain ?check br.Propagate.circuit (domain ~source ~gate_delay_of))
    in
    let module E = Propagate.Make (D) in
    Boxed (E.update br ~changed)

let circuit_of = function
  | Flat_r st -> Flat.Sta.circuit st
  | Boxed r -> r.Propagate.circuit

let bounds r id =
  match r with
  | Boxed r -> r.Propagate.per_net.(id)
  | Flat_r st -> { earliest = Flat.Sta.earliest st id; latest = Flat.Sta.latest st id }

let latest_at r id =
  match r with
  | Boxed r -> r.Propagate.per_net.(id).latest
  | Flat_r st -> Flat.Sta.latest st id

let critical_endpoint r =
  match Circuit.endpoints (circuit_of r) with
  | [] -> invalid_arg "Sta.critical_endpoint: circuit has no endpoints"
  | first :: rest ->
    List.fold_left (fun best e -> if latest_at r e > latest_at r best then e else best) first rest

let max_latest r = (bounds r (critical_endpoint r)).latest
