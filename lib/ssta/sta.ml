module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate

type bounds = { earliest : float; latest : float }

type result = bounds Propagate.result

let default_input = { earliest = 0.0; latest = 0.0 }

let gate_eval ~gate_delay_of _circuit g driver operands =
  match driver with
  | Circuit.Gate _ ->
    let earliest =
      Array.fold_left (fun acc (b : bounds) -> Float.min acc b.earliest) infinity operands
    in
    let latest =
      Array.fold_left (fun acc (b : bounds) -> Float.max acc b.latest) neg_infinity operands
    in
    let gate_delay = gate_delay_of g in
    { earliest = earliest +. gate_delay; latest = latest +. gate_delay }
  | Circuit.Input | Circuit.Dff_output _ -> assert false

let source_of ~input_bounds ~input_bounds_of =
  match input_bounds_of with Some f -> f | None -> fun _ -> input_bounds

(* Sanitizer checker: the [earliest, latest] window must stay a finite,
   ordered interval through every min/max/shift step. *)
let bounds_check : bounds Propagate.Sanitize.check =
 fun _circuit _id b ->
  Spsta_lint.Invariant.(
    first (check_interval ~what:"arrival window" (b.earliest, b.latest)))

let domain ~source ~gate_delay_of : (module Propagate.DOMAIN with type state = bounds) =
  (module struct
    type state = bounds

    let source = source
    let eval = gate_eval ~gate_delay_of
  end)

let checked_domain ?check circuit dom =
  if Propagate.Sanitize.resolve check then
    Propagate.Sanitize.wrap ~circuit ~check:bounds_check dom
  else dom

let resolve_delay ~gate_delay ~gate_delay_of =
  match gate_delay_of with Some f -> f | None -> fun _ -> gate_delay

let analyze ?(gate_delay = 1.0) ?gate_delay_of ?(input_bounds = default_input)
    ?input_bounds_of ?check ?domains ?instrument circuit =
  let source = source_of ~input_bounds ~input_bounds_of in
  let gate_delay_of = resolve_delay ~gate_delay ~gate_delay_of in
  let module D = (val checked_domain ?check circuit (domain ~source ~gate_delay_of)) in
  let module E = Propagate.Make (D) in
  E.run ?domains ?instrument circuit

let update ?(gate_delay = 1.0) ?gate_delay_of ?(input_bounds = default_input)
    ?input_bounds_of ?check r ~changed =
  let source = source_of ~input_bounds ~input_bounds_of in
  let gate_delay_of = resolve_delay ~gate_delay ~gate_delay_of in
  let module D =
    (val checked_domain ?check r.Propagate.circuit (domain ~source ~gate_delay_of))
  in
  let module E = Propagate.Make (D) in
  E.update r ~changed

let bounds (r : result) id = r.Propagate.per_net.(id)

let critical_endpoint (r : result) =
  match Circuit.endpoints r.circuit with
  | [] -> invalid_arg "Sta.critical_endpoint: circuit has no endpoints"
  | first :: rest ->
    List.fold_left
      (fun best e -> if r.per_net.(e).latest > r.per_net.(best).latest then e else best)
      first rest

let max_latest r = (bounds r (critical_endpoint r)).latest
