(** Classical corner static timing analysis: per-net [min, max] arrival
    bounds under unit gate delays, input-vector oblivious.  This is the
    "two dotted lines" of the paper's Fig. 1.

    Traversal (sequential, levelized-parallel and incremental) comes
    from {!Spsta_engine.Propagate}. *)

type bounds = { earliest : float; latest : float }

type result

val analyze :
  ?gate_delay:float ->
  ?gate_delay_of:(Spsta_netlist.Circuit.id -> float) ->
  ?input_bounds:bounds ->
  ?input_bounds_of:(Spsta_netlist.Circuit.id -> bounds) ->
  ?check:bool ->
  ?domains:int ->
  ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
  ?engine:[ `Flat | `Record ] ->
  Spsta_netlist.Circuit.t ->
  result
(** [gate_delay_of] overrides [gate_delay] (default 1.0) per gate-output
    net — e.g. sized-cell mean delays from
    {!Spsta_netlist.Sized_library}.

    [engine] selects the implementation ([`Flat] default — the
    struct-of-arrays kernel {!Spsta_engine.Flat.Sta}; [`Record] the
    boxed engine); results are bit-identical, see {!Spsta_ssta.Ssta}.
    {!update} stays on the engine that produced its input result.

    [input_bounds] defaults to {earliest = 0.; latest = 0.}; the paper's
    N(0,1) inputs are commonly bounded at +-3 sigma, i.e.
    [{earliest = -3.; latest = 3.}].  [input_bounds_of] overrides the
    window per source net.

    [domains] (default 1) evaluates each logic level's gates across that
    many OCaml domains; results are bit-identical to the sequential
    traversal at every domain count.  Raises [Invalid_argument] if
    [domains < 1].  [instrument] receives per-level gate counts and
    wall-clock timings.

    [check] (default: {!Spsta_engine.Propagate.Sanitize.enabled_by_env})
    verifies every propagated window stays a finite, ordered interval,
    raising {!Spsta_engine.Propagate.Sanitize.Violation} otherwise;
    when off no wrapper is installed. *)

val update :
  ?gate_delay:float ->
  ?gate_delay_of:(Spsta_netlist.Circuit.id -> float) ->
  ?input_bounds:bounds ->
  ?input_bounds_of:(Spsta_netlist.Circuit.id -> bounds) ->
  ?check:bool ->
  result ->
  changed:Spsta_netlist.Circuit.id list ->
  result
(** Incremental re-analysis: recompute only the fanout cones of the
    [changed] nets under the new source windows; matches a full
    {!analyze} provided nothing outside the cones changed.  Bounds
    outside the cones are carried over bit-for-bit; the input [result]
    is not mutated. *)

val bounds : result -> Spsta_netlist.Circuit.id -> bounds

val critical_endpoint : result -> Spsta_netlist.Circuit.id
(** Endpoint with the largest [latest] arrival.  Raises
    [Invalid_argument] if the circuit has no endpoints. *)

val max_latest : result -> float
(** Largest [latest] over all endpoints — the STA clock-period bound.
    Raises [Invalid_argument] if the circuit has no endpoints (it used
    to silently return [neg_infinity]; consistent with
    {!critical_endpoint} since the engine rebase). *)
