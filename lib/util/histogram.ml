type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int; (* in-range samples only *)
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; total = 0;
    underflow = 0; overflow = 0 }

let add t x =
  let bins = Array.length t.counts in
  let raw = int_of_float (Float.floor ((x -. t.lo) /. t.width)) in
  (* out-of-range samples used to be clamped into the end bins, which
     silently distorted the tail bins (and every density derived from
     them); count them separately instead *)
  if raw < 0 then t.underflow <- t.underflow + 1
  else if raw >= bins then t.overflow <- t.overflow + 1
  else begin
    t.counts.(raw) <- t.counts.(raw) + 1;
    t.total <- t.total + 1
  end

let count t = t.total
let underflow t = t.underflow
let overflow t = t.overflow
let seen t = t.total + t.underflow + t.overflow
let bin_count t = Array.length t.counts
let bin_samples t i = t.counts.(i)
let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)

let density t i =
  if t.total = 0 then 0.0
  else float_of_int t.counts.(i) /. (float_of_int t.total *. t.width)

let densities t = Array.init (bin_count t) (fun i -> (bin_center t i, density t i))

let of_samples ?(bins = 50) samples =
  if Array.length samples = 0 then invalid_arg "Histogram.of_samples: empty array";
  let lo = Array.fold_left Float.min infinity samples in
  let hi = Array.fold_left Float.max neg_infinity samples in
  let hi = if hi > lo then hi else lo +. 1.0 in
  (* widen slightly so the max sample falls inside the last bin *)
  let t = create ~lo ~hi:(hi +. ((hi -. lo) *. 1e-9) +. 1e-12) ~bins in
  Array.iter (add t) samples;
  t

let render ?(width = 50) t =
  let max_density = ref 0.0 in
  for i = 0 to bin_count t - 1 do
    if density t i > !max_density then max_density := density t i
  done;
  let buf = Buffer.create 1024 in
  for i = 0 to bin_count t - 1 do
    let d = density t i in
    let bar_len =
      if !max_density <= 0.0 then 0
      else int_of_float (Float.round (d /. !max_density *. float_of_int width))
    in
    Buffer.add_string buf (Printf.sprintf "%8.3f | %s\n" (bin_center t i) (String.make bar_len '#'))
  done;
  Buffer.contents buf
