(** Fixed-bin histograms, used to visualise Monte Carlo arrival-time
    distributions (Fig. 1) and to compare distribution shapes. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [lo, hi) with [bins] equal bins.
    Raises [Invalid_argument] if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit
(** Samples outside [lo, hi) are counted in {!underflow}/{!overflow}
    rather than binned — they never distort the end bins. *)

val count : t -> int
(** Samples that landed inside [lo, hi). *)

val underflow : t -> int
(** Samples below [lo]. *)

val overflow : t -> int
(** Samples at or above [hi]. *)

val seen : t -> int
(** Every sample ever passed to {!add}:
    [count + underflow + overflow]. *)

val bin_count : t -> int
val bin_samples : t -> int -> int
(** Raw sample count of bin [i]. *)

val bin_center : t -> int -> float
val density : t -> int -> float
(** Height of bin [i] normalised over the in-range samples, so the
    histogram integrates to 1 over [lo, hi) regardless of how many
    samples fell outside; 0 when no sample is in range. *)

val densities : t -> (float * float) array
(** All (center, density) pairs, in bin order. *)

val of_samples : ?bins:int -> float array -> t
(** Histogram spanning the sample range (default 50 bins).
    Raises [Invalid_argument] on an empty array. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one bin per line — handy in example programs. *)
