(* Fork/join helpers over OCaml 5 domains.

   The unit of work here is a contiguous index range: the caller supplies
   [f lo hi] that processes indices [lo, hi).  Ranges are deterministic
   functions of (n, domains), so any computation whose per-index work is
   independent of evaluation order produces identical results at every
   domain count — the property the levelized analyzers rely on. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let check_domains = function
  | d when d >= 1 -> d
  | _ -> invalid_arg "Parallel: domains must be positive"

let ranges ~chunks n =
  let chunks = min chunks n in
  let base = n / chunks and extra = n mod chunks in
  Array.init chunks (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + if i < extra then 1 else 0 in
      (lo, hi))

let iter_ranges ~domains n f =
  let domains = check_domains domains in
  if n > 0 then begin
    if domains = 1 || n = 1 then f 0 n
    else begin
      let bounds = ranges ~chunks:domains n in
      let spawned =
        Array.init
          (Array.length bounds - 1)
          (fun i ->
            let lo, hi = bounds.(i + 1) in
            Domain.spawn (fun () -> f lo hi))
      in
      (* run the first chunk on the calling domain; join everything even
         if it raises, so no worker outlives the call *)
      let own = try Ok (f (fst bounds.(0)) (snd bounds.(0))) with e -> Error e in
      let joined =
        Array.fold_left
          (fun acc h -> match (acc, try Ok (Domain.join h) with e -> Error e) with
            | Error _, _ -> acc
            | Ok (), r -> r)
          (Ok ()) spawned
      in
      match (own, joined) with
      | Error e, _ | Ok (), Error e -> raise e
      | Ok (), Ok () -> ()
    end
  end
