(* Deterministic fork/join helpers over OCaml 5 domains, backed by one
   persistent worker pool.

   The unit of work is either a contiguous index range ([iter_ranges])
   or a chunk index ([run_chunks]).  Decompositions are deterministic
   functions of the problem size and the requested domain count, and the
   per-unit work of every caller is order-independent, so results are
   bit-identical at every domain count — the property the levelized
   analyzers rely on.

   Workers are spawned once (lazily, growing to the largest domain count
   ever requested) and reused across calls: a levelized sweep that used
   to pay [depth * (domains - 1)] domain spawns now pays zero.  Within a
   job, chunks are claimed through an atomic work index, so an uneven
   chunk cost profile (e.g. grid-backend gates whose support widths
   differ) load-balances itself without affecting which chunk computes
   what. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let check_domains = function
  | d when d >= 1 -> d
  | _ -> invalid_arg "Parallel: domains must be positive"

let ranges ~chunks n =
  let chunks = min chunks n in
  let base = n / chunks and extra = n mod chunks in
  Array.init chunks (fun i ->
      let lo = (i * base) + min i extra in
      let hi = lo + base + if i < extra then 1 else 0 in
      (lo, hi))

(* ---------- the persistent pool ---------- *)

(* One job at a time (a [submit] mutex serialises callers; nested or
   concurrent parallel regions fall back to inline execution).  Workers
   sleep on [work_cond] between jobs and claim chunks from [next]; the
   submitting domain participates too, then waits for stragglers on
   [done_cond].  Short spins before both blocking waits keep the per-job
   (= per-level) barrier in the sub-microsecond range when the pool is
   hot, while still yielding the core on oversubscribed hosts. *)

type job = {
  active : int;  (* how many workers may help (submitter always does) *)
  chunks : int;
  f : int -> unit;
  next : int Atomic.t;  (* work index: next chunk to claim *)
  remaining : int Atomic.t;  (* chunks not yet completed *)
  failed : exn option Atomic.t;  (* first exception from any chunk *)
}

type pool = {
  mutex : Mutex.t;
  work_cond : Condition.t;  (* "a new job (or shutdown) was posted" *)
  done_cond : Condition.t;  (* "the current job completed" *)
  mutable generation : int;  (* bumped per job, under [mutex] *)
  gen_hint : int Atomic.t;  (* mirror of [generation] for lock-free spins *)
  mutable job : job option;
  mutable size : int;  (* spawned workers *)
  mutable workers : unit Domain.t list;
  mutable jobs_posted : int;
  mutable shutdown : bool;
  submit : Mutex.t;
}

(* OCaml caps live domains at a small fixed limit (128 on current
   runtimes); leave room for the main domain and for code that spawns
   domains of its own (the analysis server's request pool). *)
let max_workers = 64

let spin_limit = 4096

let the_pool =
  lazy
    {
      mutex = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      generation = 0;
      gen_hint = Atomic.make 0;
      job = None;
      size = 0;
      workers = [];
      jobs_posted = 0;
      shutdown = false;
      submit = Mutex.create ();
    }

(* Claim and run chunks until the work index runs dry.  After a failure
   the remaining chunks are still claimed and counted (so completion
   accounting stays exact) but not run. *)
let drain pool job =
  let rec loop () =
    let k = Atomic.fetch_and_add job.next 1 in
    if k < job.chunks then begin
      (if Atomic.get job.failed = None then
         try job.f k
         with e -> ignore (Atomic.compare_and_set job.failed None (Some e)));
      let left = Atomic.fetch_and_add job.remaining (-1) - 1 in
      if left = 0 then begin
        (* wake a submitter that gave up spinning; taking the mutex
           orders this broadcast against its remaining-check *)
        Mutex.lock pool.mutex;
        Condition.broadcast pool.done_cond;
        Mutex.unlock pool.mutex
      end;
      loop ()
    end
  in
  loop ()

let rec worker_loop pool index seen =
  (* consecutive levels of one sweep post jobs microseconds apart:
     watch the generation hint briefly before sleeping *)
  let spun = ref 0 in
  while Atomic.get pool.gen_hint = seen && !spun < spin_limit do
    Domain.cpu_relax ();
    incr spun
  done;
  Mutex.lock pool.mutex;
  while pool.generation = seen && not pool.shutdown do
    Condition.wait pool.work_cond pool.mutex
  done;
  if pool.shutdown then Mutex.unlock pool.mutex
  else begin
    let gen = pool.generation in
    let job = pool.job in
    Mutex.unlock pool.mutex;
    (match job with
    | Some j when index < j.active -> drain pool j
    | Some _ | None -> ());
    worker_loop pool index gen
  end

let shutdown_pool () =
  if Lazy.is_val the_pool then begin
    let pool = Lazy.force the_pool in
    Mutex.lock pool.mutex;
    pool.shutdown <- true;
    Condition.broadcast pool.work_cond;
    let workers = pool.workers in
    pool.workers <- [];
    pool.size <- 0;
    Mutex.unlock pool.mutex;
    List.iter Domain.join workers
  end

(* Grow the pool to [wanted] workers.  Only called with [pool.submit]
   held, so [generation] is stable and no job can be posted mid-growth. *)
let ensure_workers pool wanted =
  let wanted = min wanted max_workers in
  if pool.size < wanted && not pool.shutdown then begin
    Mutex.lock pool.mutex;
    let first = pool.size = 0 in
    while pool.size < wanted do
      let index = pool.size and gen0 = pool.generation in
      let d = Domain.spawn (fun () -> worker_loop pool index gen0) in
      pool.workers <- d :: pool.workers;
      pool.size <- pool.size + 1
    done;
    Mutex.unlock pool.mutex;
    if first then at_exit shutdown_pool
  end

let run_chunks ~domains ~chunks f =
  let domains = check_domains domains in
  if chunks > 0 then begin
    if domains = 1 || chunks = 1 then
      for k = 0 to chunks - 1 do
        f k
      done
    else begin
      let pool = Lazy.force the_pool in
      if not (Mutex.try_lock pool.submit) then
        (* nested / concurrent parallel region: the single job slot is
           busy, so run inline (same chunks, same results) rather than
           queueing behind — or deadlocking on — our own pool *)
        for k = 0 to chunks - 1 do
          f k
        done
      else
        Fun.protect
          ~finally:(fun () -> Mutex.unlock pool.submit)
          (fun () ->
            ensure_workers pool (domains - 1);
            let active = min (domains - 1) pool.size in
            let job =
              {
                active;
                chunks;
                f;
                next = Atomic.make 0;
                remaining = Atomic.make chunks;
                failed = Atomic.make None;
              }
            in
            Mutex.lock pool.mutex;
            pool.job <- Some job;
            pool.generation <- pool.generation + 1;
            pool.jobs_posted <- pool.jobs_posted + 1;
            Atomic.set pool.gen_hint pool.generation;
            Condition.broadcast pool.work_cond;
            Mutex.unlock pool.mutex;
            drain pool job;
            (* every chunk is claimed; wait for helpers to finish theirs *)
            let spun = ref 0 in
            while Atomic.get job.remaining > 0 && !spun < spin_limit do
              Domain.cpu_relax ();
              incr spun
            done;
            if Atomic.get job.remaining > 0 then begin
              Mutex.lock pool.mutex;
              while Atomic.get job.remaining > 0 do
                Condition.wait pool.done_cond pool.mutex
              done;
              Mutex.unlock pool.mutex
            end;
            (* job done: clear the slot so [f] (and what it closes over)
               does not outlive the call *)
            Mutex.lock pool.mutex;
            pool.job <- None;
            Mutex.unlock pool.mutex;
            match Atomic.get job.failed with Some e -> raise e | None -> ())
    end
  end

let iter_ranges ~domains n f =
  let domains = check_domains domains in
  if n > 0 then begin
    if domains = 1 || n = 1 then f 0 n
    else begin
      let bounds = ranges ~chunks:domains n in
      run_chunks ~domains ~chunks:(Array.length bounds) (fun k ->
          let lo, hi = bounds.(k) in
          f lo hi)
    end
  end

let pool_size () = if Lazy.is_val the_pool then (Lazy.force the_pool).size else 0

let pool_jobs () =
  if Lazy.is_val the_pool then (Lazy.force the_pool).jobs_posted else 0
