(** Deterministic fork/join over OCaml 5 domains.

    Work is partitioned into contiguous index ranges that depend only on
    the problem size and the domain count, so computations whose
    per-index work is order-independent give bit-identical results at
    every domain count. *)

val default_domains : unit -> int
(** [recommended_domain_count () - 1], at least 1: leave one core for
    the caller's own thread of control. *)

val check_domains : int -> int
(** Identity on positive domain counts; raises [Invalid_argument]
    otherwise.  For validating user-supplied [?domains] knobs. *)

val ranges : chunks:int -> int -> (int * int) array
(** [ranges ~chunks n] splits [0, n) into [min chunks n] contiguous
    near-equal [(lo, hi)] ranges covering every index exactly once. *)

val iter_ranges : domains:int -> int -> (int -> int -> unit) -> unit
(** [iter_ranges ~domains n f] runs [f lo hi] over the {!ranges}
    partition of [0, n), each range on its own domain ([domains = 1]
    runs [f 0 n] in the calling domain — no spawns).  Joins every
    spawned domain before returning, re-raising the first exception
    encountered.  Raises [Invalid_argument] if [domains < 1]. *)
