(** Deterministic fork/join over a persistent pool of OCaml 5 domains.

    Work is partitioned into contiguous index ranges (or chunk indices)
    that depend only on the problem size and the requested domain count,
    so computations whose per-index work is order-independent give
    bit-identical results at every domain count.

    Worker domains are spawned once — lazily, growing to the largest
    domain count ever requested — and reused across calls: a levelized
    sweep pays zero domain-startup costs instead of one spawn per level
    per helper.  Within one call, chunks are claimed through an atomic
    work index, so uneven chunk costs load-balance dynamically without
    changing which chunk computes what. *)

val default_domains : unit -> int
(** [recommended_domain_count () - 1], at least 1: leave one core for
    the caller's own thread of control. *)

val check_domains : int -> int
(** Identity on positive domain counts; raises [Invalid_argument]
    otherwise.  For validating user-supplied [?domains] knobs. *)

val ranges : chunks:int -> int -> (int * int) array
(** [ranges ~chunks n] splits [0, n) into [min chunks n] contiguous
    near-equal [(lo, hi)] ranges covering every index exactly once. *)

val run_chunks : domains:int -> chunks:int -> (int -> unit) -> unit
(** [run_chunks ~domains ~chunks f] runs [f k] for every
    [k in 0 .. chunks - 1], claimed through an atomic work index by the
    calling domain plus up to [domains - 1] pool workers.  [f] must be
    safe to call concurrently for distinct [k] (each chunk touching
    disjoint state), and the set of calls — hence the result, for
    order-independent work — does not depend on the schedule.

    [domains = 1] (or a single chunk) runs everything inline with no
    pool interaction.  Nested or concurrent calls from a second domain
    detect the busy pool and also degrade to inline execution, so
    parallel regions never deadlock on their own workers.  Exceptions
    raised by a chunk are re-raised in the caller after all claimed
    chunks settle (chunks claimed after the first failure are skipped).
    Raises [Invalid_argument] if [domains < 1]. *)

val iter_ranges : domains:int -> int -> (int -> int -> unit) -> unit
(** [iter_ranges ~domains n f] runs [f lo hi] over the {!ranges}
    partition of [0, n) into [domains] chunks ([domains = 1] runs
    [f 0 n] in the calling domain).  Built on {!run_chunks}: same
    pooling, fallback and exception behaviour, and the partition is the
    same as it always was, so callers see identical range decompositions
    at every domain count. *)

val shutdown_pool : unit -> unit
(** Stop and join every pool worker (registered with [at_exit]
    automatically when the first worker is spawned).  Subsequent
    parallel calls run inline.  Only meaningful from the main domain
    with no job in flight. *)

val pool_size : unit -> int
(** Number of worker domains currently alive in the pool (0 before any
    parallel call).  Monotone: the pool grows to the largest
    [domains - 1] requested and never shrinks until {!shutdown_pool}. *)

val pool_jobs : unit -> int
(** Total number of pooled jobs executed so far (one per parallel level
    batch / chunked call).  With {!pool_size}, lets tests assert that
    repeated sweeps reuse the same workers instead of spawning. *)
