type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option; (* cached second Box-Muller deviate *)
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64: expands a single 64-bit seed into well-mixed words, the
   recommended way to seed xoshiro generators. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = None }

let create ~seed = of_seed64 (Int64.of_int seed)

let copy t = { t with spare = t.spare }

let bits64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let stream ~seed index =
  if index < 0 then invalid_arg "Rng.stream: negative index";
  (* the [index]-th output of a splitmix64 sequence started at [seed]:
     random access (no stepping) because splitmix64's state advances by a
     fixed additive constant per draw *)
  let st = ref (Int64.add (Int64.of_int seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int index))) in
  of_seed64 (splitmix64 st)

(* xoshiro256++ jump polynomial: advancing by 2^128 steps *)
let jump_poly =
  [| 0x180ec6d33cfd0abaL; 0xd5a61266f0c9392cL; 0xa9582618e03fc9aaL; 0x39abdc4529b1661cL |]

let jump t =
  let j0 = ref 0L and j1 = ref 0L and j2 = ref 0L and j3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand (Int64.shift_right_logical word b) 1L = 1L then begin
          j0 := Int64.logxor !j0 t.s0;
          j1 := Int64.logxor !j1 t.s1;
          j2 := Int64.logxor !j2 t.s2;
          j3 := Int64.logxor !j3 t.s3
        end;
        ignore (bits64 t)
      done)
    jump_poly;
  t.s0 <- !j0;
  t.s1 <- !j1;
  t.s2 <- !j2;
  t.s3 <- !j3;
  t.spare <- None

let float t =
  (* 53 high bits -> uniform double in [0,1) *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free for our purposes: modulo bias is ~n/2^63, negligible *)
  let v = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p = float t < p

let gaussian t ~mu ~sigma =
  match t.spare with
  | Some z ->
    t.spare <- None;
    mu +. (sigma *. z)
  | None ->
    let rec draw () =
      let u = float t in
      if u <= 1e-300 then draw () else u
    in
    let u1 = draw () in
    let u2 = float t in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    t.spare <- Some (r *. sin theta);
    mu +. (sigma *. r *. cos theta)

let choose_index t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.choose_index: empty weights";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    if weights.(i) < 0.0 then invalid_arg "Rng.choose_index: negative weight";
    total := !total +. weights.(i)
  done;
  if !total <= 0.0 then invalid_arg "Rng.choose_index: zero total weight";
  let target = float t *. !total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
