(** Deterministic pseudo-random number generation.

    A small, explicit-state PRNG so that every experiment in the repository
    is reproducible from a seed.  The generator is xoshiro256++ seeded
    through splitmix64, which is both fast and of far higher quality than
    the needs of a logic-simulation Monte Carlo. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] draws from [t] to seed a fresh, statistically independent
    generator.  Useful to give each Monte Carlo run its own stream. *)

val stream : seed:int -> int -> t
(** [stream ~seed index] is the [index]-th (>= 0) member of a family of
    statistically independent generators derived from [seed]: the
    xoshiro256++ state is expanded from the [index]-th output of a
    splitmix64 sequence started at [seed], in O(1) regardless of
    [index].  Equal [(seed, index)] pairs give equal streams, and no
    stream of the family coincides with [create ~seed] itself, so a
    master generator and per-trial substreams can share one seed.  This
    is what makes Monte Carlo results independent of how trials are
    scheduled: trial [i] always consumes [stream ~seed i]. *)

val jump : t -> unit
(** Advance the generator by 2^128 steps of its sequence (the
    xoshiro256++ jump polynomial), in 256 fixed steps.  Splitting a
    stream by repeated [copy]+[jump] yields generators whose next 2^128
    outputs provably never overlap; any Box-Muller spare is dropped. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n-1].  [n] must be positive. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via the Box-Muller transform. *)

val choose_index : t -> float array -> int
(** [choose_index t weights] samples an index proportionally to
    non-negative [weights].  Raises [Invalid_argument] if the weights sum
    to zero or any weight is negative. *)
