(* erfc via the rational Chebyshev fit of Numerical Recipes (erfcc); its
   ~1e-7 relative accuracy is ample for moment-matching formulas. *)
(* The Horner chain is written out by hand rather than folded over a
   coefficient array: this sits inside every Clark MAX/MIN of the SSTA
   sweeps, and a polymorphic fold over a float array boxes each
   coefficient (tens of millions of minor-heap words per million-gate
   sweep).  The nesting order matches the former
   [Array.fold_right (fun c acc -> c +. t *. acc) coeffs 0.0] exactly,
   so results are bit-identical. *)
let erfc x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t *. (-0.82215223 +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erf x = 1.0 -. erfc x

let inv_sqrt_2pi = 1.0 /. sqrt (2.0 *. Float.pi)

let normal_pdf x = inv_sqrt_2pi *. exp (-0.5 *. x *. x)

let sqrt_2 = sqrt 2.0

let normal_cdf x = 0.5 *. erfc (-.x /. sqrt_2)

(* Acklam's inverse-normal rational approximation with one Halley step,
   giving near machine-precision quantiles across (0,1). *)
let normal_quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Special.normal_quantile: p outside (0,1)";
  let ratio num den q =
    let top = Array.fold_left (fun acc c -> (acc *. q) +. c) 0.0 num in
    let bot = Array.fold_left (fun acc c -> (acc *. q) +. c) 0.0 den in
    top /. bot
  in
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01; 1.0 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00; 1.0 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then
      let q = sqrt (-2.0 *. log p) in
      ratio c d q
    else if p <= 1.0 -. p_low then
      let q = p -. 0.5 in
      let r = q *. q in
      q *. ratio a b r
    else
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.ratio c d q
  in
  let e = normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))
