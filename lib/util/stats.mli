(** Descriptive statistics: streaming (Welford) accumulators and helpers
    over float arrays.  Used by the Monte Carlo reference simulator and by
    the experiment harness when comparing analyses. *)

type acc = {
  mutable n : int;
  mutable mu : float;  (** running mean *)
  mutable m2 : float;  (** sum of squared deviations from the running mean *)
  mutable lo : float;
  mutable hi : float;
}
(** Streaming accumulator for count / mean / variance / extrema.

    The representation is exposed so that hot accumulation loops (the
    packed Monte Carlo engine) can inline the Welford update instead of
    paying a non-inlined cross-module call per sample; such loops must
    reproduce {!acc_add}'s arithmetic exactly.  Everyone else should
    treat the fields as read-only and go through the accessors. *)

val acc_create : unit -> acc
val acc_add : acc -> float -> unit
val acc_count : acc -> int
val acc_mean : acc -> float
(** Mean of the observations; 0 if empty. *)

val acc_variance : acc -> float
(** Population variance (divides by n); 0 if fewer than 2 samples. *)

val acc_stddev : acc -> float
val acc_min : acc -> float
(** Raises [Invalid_argument] if empty. *)

val acc_max : acc -> float
(** Raises [Invalid_argument] if empty. *)

val acc_merge : acc -> acc -> acc
(** Combine two accumulators as if their streams were concatenated. *)

val mean : float array -> float
val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float
val skewness : float array -> float
(** Standardised third central moment; 0 when the variance vanishes. *)

val covariance : float array -> float array -> float
(** Population covariance; arrays must have equal nonzero length. *)

val correlation : float array -> float array -> float
(** Pearson correlation; 0 when either variance vanishes. *)

val percentile : float array -> p:float -> float
(** Linear-interpolation percentile, [p] in [0, 1].  Sorts a copy. *)

val relative_error : reference:float -> float -> float
(** |x - reference| / |reference|; |x - reference| when reference = 0. *)

val ks_statistic : float array -> cdf:(float -> float) -> float
(** One-sample Kolmogorov-Smirnov statistic: the supremum distance
    between the sample's empirical cdf and the model [cdf].  Sorts a
    copy.  Raises [Invalid_argument] on an empty array. *)

val ks_critical : n:int -> alpha:float -> float
(** Asymptotic critical value c(alpha) / sqrt(n) for the one-sample KS
    test; supported alphas: 0.1, 0.05, 0.01 (raises [Invalid_argument]
    otherwise). *)
