(* Terms are kept as a sorted association list (symbol id -> coeff),
   which keeps add/sub linear and deterministic. *)

type t = { center : float; terms : (int * float) list }

type context = { mutable next : int }

let create_context ?(first = 0) () = { next = first }

let fresh ctx =
  let s = ctx.next in
  ctx.next <- ctx.next + 1;
  s

let constant c = { center = c; terms = [] }

let make ctx ~center ~radius =
  if radius < 0.0 then invalid_arg "Affine.make: negative radius";
  if radius = 0.0 then constant center
  else { center; terms = [ (fresh ctx, radius) ] }

let center t = t.center

let radius t = List.fold_left (fun acc (_, c) -> acc +. Float.abs c) 0.0 t.terms

let interval t =
  let r = radius t in
  (t.center -. r, t.center +. r)

let merge_terms op a b =
  let rec go xs ys =
    match (xs, ys) with
    | [], rest -> List.map (fun (s, c) -> (s, op 0.0 c)) rest
    | rest, [] -> List.map (fun (s, c) -> (s, op c 0.0)) rest
    | (sx, cx) :: xs', (sy, cy) :: ys' ->
      if sx = sy then begin
        let c = op cx cy in
        if c = 0.0 then go xs' ys' else (sx, c) :: go xs' ys'
      end
      else if sx < sy then (sx, op cx 0.0) :: go xs' ys
      else (sy, op 0.0 cy) :: go xs ys'
  in
  go a b

let add a b = { center = a.center +. b.center; terms = merge_terms ( +. ) a.terms b.terms }
let sub a b = { center = a.center -. b.center; terms = merge_terms ( -. ) a.terms b.terms }
let add_constant t c = { t with center = t.center +. c }

let scale k t =
  if k = 0.0 then constant 0.0
  else { center = k *. t.center; terms = List.map (fun (s, c) -> (s, k *. c)) t.terms }

let neg t = scale (-1.0) t

(* max(x, y) = (x + y)/2 + |x - y|/2.  When the ranges overlap, enclose
   |d| over [dlo, dhi] (dlo < 0 < dhi) by its Chebyshev chord
   alpha*d + beta +- beta, with alpha = (dhi + dlo) / (dhi - dlo) and
   beta = half the chord's value at 0; keeping the alpha*d term
   preserves the correlation between the result and its operands. *)
let join_max ctx a b =
  let d = sub a b in
  let dlo, dhi = interval d in
  if dlo >= 0.0 then a
  else if dhi <= 0.0 then b
  else begin
    let alpha = (dhi +. dlo) /. (dhi -. dlo) in
    let chord_at_zero = -.dlo *. (1.0 +. alpha) in
    let beta = chord_at_zero /. 2.0 in
    let abs_d =
      let linear = scale alpha d in
      let noise = { center = beta; terms = [ (fresh ctx, beta) ] } in
      add linear noise
    in
    scale 0.5 (add (add a b) abs_d)
  end

let join_max_many ctx = function
  | [] -> invalid_arg "Affine.join_max_many: empty list"
  | first :: rest -> List.fold_left (join_max ctx) first rest

let eval t assign =
  List.fold_left
    (fun acc (s, c) ->
      let v = Float.max (-1.0) (Float.min 1.0 (assign s)) in
      acc +. (c *. v))
    t.center t.terms

let dominant_symbols t n =
  let sorted =
    List.sort (fun (_, a) (_, b) -> compare (Float.abs b) (Float.abs a)) t.terms
  in
  List.filteri (fun i _ -> i < n) sorted
