(** Affine interval arithmetic (the paper's §3.6 symbolic track;
    Ma/Rutenbar-style interval-valued analysis, refs [10, 20]).

    A value is x = center + sum_i coeff_i * eps_i with each noise symbol
    eps_i ranging over [-1, 1].  Unlike plain intervals, shared symbols
    preserve correlation: x - x = 0 exactly, and reconvergent paths stay
    tight.  All operations compute *guaranteed enclosures*: every
    pointwise evaluation of the operands (under any eps assignment) is
    contained in the result's range. *)

type t

type context
(** Supply of fresh noise symbols. *)

val create_context : ?first:int -> unit -> context
(** [first] (default 0) is the id of the first symbol the context hands
    out.  Callers that evaluate concurrently can carve the symbol space
    into disjoint deterministic ranges (one private context per unit of
    work) instead of racing on one shared counter — {!Interval_sta} does
    this per net, which is what makes its parallel traversal
    bit-identical to the sequential one. *)

val constant : float -> t
val make : context -> center:float -> radius:float -> t
(** A fresh independent uncertainty: center +- radius with a new noise
    symbol.  Raises [Invalid_argument] on negative radius. *)

val center : t -> float
val radius : t -> float
(** Sum of coefficient magnitudes. *)

val interval : t -> float * float
(** (lo, hi) = center -+ radius. *)

val add : t -> t -> t
val sub : t -> t -> t
val add_constant : t -> float -> t
val scale : float -> t -> t
val neg : t -> t

val join_max : context -> t -> t -> t
(** Sound enclosure of max(x, y): exact when the ranges are disjoint,
    otherwise (x + y)/2 + |x - y|/2 with the absolute value enclosed
    via a fresh symbol. *)

val join_max_many : context -> t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val eval : t -> (int -> float) -> float
(** Evaluate under a concrete noise assignment (values are clamped to
    [-1, 1] to stay within the model). *)

val dominant_symbols : t -> int -> (int * float) list
(** The [n] largest-magnitude noise terms — which uncertainty sources
    drive this value. *)
