module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate
module Gate_kind = Spsta_logic.Gate_kind

type arrival = { rise : Canonical.t; fall : Canonical.t }

type result = arrival Propagate.result

let base_arrivals kind inputs =
  match kind with
  | Gate_kind.Not | Gate_kind.Buf -> (
    match inputs with
    | [ a ] -> (a.rise, a.fall)
    | [] | _ :: _ -> invalid_arg "Canonical_ssta: NOT/BUF expects one input" )
  | Gate_kind.And | Gate_kind.Nand ->
    ( Canonical.max_many (List.map (fun a -> a.rise) inputs),
      Canonical.min_many (List.map (fun a -> a.fall) inputs) )
  | Gate_kind.Or | Gate_kind.Nor ->
    ( Canonical.min_many (List.map (fun a -> a.rise) inputs),
      Canonical.max_many (List.map (fun a -> a.fall) inputs) )
  | Gate_kind.Xor | Gate_kind.Xnor ->
    let both = List.concat_map (fun a -> [ a.rise; a.fall ]) inputs in
    let settle = Canonical.max_many both in
    (settle, settle)

(* Sanitizer checker: a canonical form must keep a finite mean, finite
   sensitivities, and a finite non-negative independent sigma through
   every SUM / Clark MAX step. *)
let canonical_check ~what (c : Canonical.t) =
  let open Spsta_lint.Invariant in
  check_finite ~what:(what ^ " mean") c.Canonical.mean
  @ (if not (finite c.Canonical.rand) then
       [ { rule = "non-finite"; message = Printf.sprintf "%s independent sigma is %h" what c.Canonical.rand } ]
     else if c.Canonical.rand < 0.0 then
       [
         {
           rule = "negative-sigma";
           message =
             Printf.sprintf "%s independent sigma is negative (%.17g)" what c.Canonical.rand;
         };
       ]
     else [])
  @ (Array.to_list c.Canonical.sens
    |> List.concat_map (fun s -> check_finite ~what:(what ^ " sensitivity") s))

let arrival_check : arrival Propagate.Sanitize.check =
 fun _circuit _id a ->
  Spsta_lint.Invariant.first
    (canonical_check ~what:"rise arrival" a.rise @ canonical_check ~what:"fall arrival" a.fall)

let analyze ?(input_sigma = 1.0) ?check ?domains ?instrument model placement circuit =
  let nparams = Param_model.num_params model in
  let source_arrival =
    let s = Canonical.make ~mean:0.0 ~sens:(Array.make nparams 0.0) ~rand:input_sigma in
    { rise = s; fall = s }
  in
  let dom : (module Propagate.DOMAIN with type state = arrival) =
    (module struct
      type state = arrival

      let source _ = source_arrival

      (* pure in its operands ([gate_delay_canonical] allocates a fresh
         sensitivity vector per call and only reads the model), so the
         engine's parallel schedule is bit-identical to the sequential
         sweep *)
      let eval _circuit g driver operands =
        match driver with
        | Circuit.Gate { kind; _ } ->
          let base_rise, base_fall = base_arrivals kind (Array.to_list operands) in
          let rise0, fall0 =
            if Gate_kind.inverting kind then (base_fall, base_rise) else (base_rise, base_fall)
          in
          let delay = Param_model.gate_delay_canonical model placement g in
          { rise = Canonical.add rise0 delay; fall = Canonical.add fall0 delay }
        | Circuit.Input | Circuit.Dff_output _ -> assert false
    end)
  in
  let dom =
    if Propagate.Sanitize.resolve check then
      Propagate.Sanitize.wrap ~circuit ~check:arrival_check dom
    else dom
  in
  let module E = Propagate.Make ((val dom)) in
  E.run ?domains ?instrument circuit

let arrival (r : result) id = r.Propagate.per_net.(id)

let of_direction a = function `Rise -> a.rise | `Fall -> a.fall

let critical_endpoint (r : result) direction =
  match Circuit.endpoints r.circuit with
  | [] -> invalid_arg "Canonical_ssta.critical_endpoint: circuit has no endpoints"
  | first :: rest ->
    let mean e = (of_direction r.per_net.(e) direction).Canonical.mean in
    List.fold_left (fun best e -> if mean e > mean best then e else best) first rest

let endpoint_correlation (r : result) direction a b =
  Canonical.correlation (of_direction r.per_net.(a) direction) (of_direction r.per_net.(b) direction)

let chip_delay (r : result) =
  let forms =
    List.concat_map
      (fun e -> [ r.per_net.(e).rise; r.per_net.(e).fall ])
      (Circuit.endpoints r.circuit)
  in
  Canonical.max_many forms
