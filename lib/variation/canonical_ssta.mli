(** Block-based SSTA over first-order canonical forms — the
    principal-component-aware SSTA the paper positions itself against
    (its reference [25]).  Identical MIN/MAX structure to
    {!Spsta_ssta.Ssta} but arrivals are canonical forms over a shared
    process-parameter vector, so path-sharing and spatial correlations
    survive the MAX operation. *)

type arrival = { rise : Canonical.t; fall : Canonical.t }

type result

val analyze :
  ?input_sigma:float ->
  ?check:bool ->
  ?domains:int ->
  ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
  Param_model.t ->
  Param_model.placement ->
  Spsta_netlist.Circuit.t ->
  result
(** Source arrivals are N(0, input_sigma) in the independent term
    (default 1.0, the paper's inputs); gate delays come from the model's
    canonical forms.

    Traversal comes from {!Spsta_engine.Propagate}: [domains]
    (default 1) evaluates each logic level's gates across that many
    OCaml domains with results bit-identical to the sequential
    traversal; [instrument] receives per-level gate counts and
    wall-clock timings.  Raises [Invalid_argument] if [domains < 1].

    [check] (default: {!Spsta_engine.Propagate.Sanitize.enabled_by_env})
    verifies every canonical form keeps a finite mean, finite
    sensitivities and a non-negative independent sigma, raising
    {!Spsta_engine.Propagate.Sanitize.Violation} otherwise; when off no
    wrapper is installed. *)

val arrival : result -> Spsta_netlist.Circuit.id -> arrival

val critical_endpoint : result -> [ `Rise | `Fall ] -> Spsta_netlist.Circuit.id

val endpoint_correlation :
  result -> [ `Rise | `Fall ] -> Spsta_netlist.Circuit.id -> Spsta_netlist.Circuit.id -> float
(** Correlation between two endpoint arrivals through the shared
    parameters — information a (mean, sigma)-only SSTA cannot provide. *)

val chip_delay : result -> Canonical.t
(** Canonical MAX over all endpoint arrivals (both directions): the
    clock-period-setting distribution. *)
