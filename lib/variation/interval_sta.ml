module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate

(* Each net carries its affine enclosure plus the plain-interval
   ("naive") enclosure propagated alongside for comparison. *)
type state = { affine : Affine.t; naive : float * float }

type result = state Propagate.result

(* Deterministic noise-symbol allocation: net [id] owns the id range
   [base.(id), base.(id) + capacity id), where the capacity covers every
   symbol its evaluation can mint (one for a source's arrival window;
   one for a gate's delay plus up to fanin - 1 Chebyshev symbols from
   the join_max fold).  Each evaluation draws from a private context
   seeded at its own base, so symbol ids depend only on the net — never
   on the traversal schedule — which keeps the parallel sweep race-free
   and bit-identical to the sequential one. *)
let symbol_bases circuit =
  let n = Circuit.num_nets circuit in
  let base = Array.make n 0 in
  let next = ref 0 in
  for id = 0 to n - 1 do
    base.(id) <- !next;
    let capacity =
      match Circuit.driver circuit id with
      | Circuit.Input | Circuit.Dff_output _ -> 1
      | Circuit.Gate { inputs; _ } -> Array.length inputs
    in
    next := !next + capacity
  done;
  base

(* Sanitizer checker: both enclosures must stay finite ordered
   intervals, and they must overlap — each is guaranteed to contain the
   true arrival, so an empty intersection means one of them is wrong. *)
let state_check : state Propagate.Sanitize.check =
 fun _circuit _id s ->
  let open Spsta_lint.Invariant in
  let alo, ahi = Affine.interval s.affine in
  let nlo, nhi = s.naive in
  match
    first
      (check_interval ~what:"affine enclosure" (alo, ahi)
      @ check_interval ~what:"naive enclosure" (nlo, nhi))
  with
  | Some _ as violation -> violation
  | None ->
    if Float.max alo nlo > Float.min ahi nhi +. prob_tolerance then
      Some
        ( "inverted-interval",
          Printf.sprintf
            "affine enclosure [%.17g, %.17g] and naive enclosure [%.17g, %.17g] do not \
             intersect"
            alo ahi nlo nhi )
    else None

let analyze ?(gate_delay = 1.0) ?(delay_radius = 0.0) ?(input_radius = 3.0) ?check ?domains
    ?instrument circuit =
  if delay_radius < 0.0 || input_radius < 0.0 then
    invalid_arg "Interval_sta.analyze: negative radius";
  let base = symbol_bases circuit in
  let dom : (module Propagate.DOMAIN with type state = state) =
    (module struct
      type nonrec state = state

      let source s =
        let ctx = Affine.create_context ~first:base.(s) () in
        { affine = Affine.make ctx ~center:0.0 ~radius:input_radius;
          naive = (-.input_radius, input_radius) }

      let eval _circuit g driver operands =
        match driver with
        | Circuit.Gate _ ->
          let ctx = Affine.create_context ~first:base.(g) () in
          let affines = List.map (fun s -> s.affine) (Array.to_list operands) in
          let delay = Affine.make ctx ~center:gate_delay ~radius:delay_radius in
          let affine = Affine.add (Affine.join_max_many ctx affines) delay in
          let lo =
            Array.fold_left (fun acc s -> Float.max acc (fst s.naive)) neg_infinity operands
          in
          let hi =
            Array.fold_left (fun acc s -> Float.max acc (snd s.naive)) neg_infinity operands
          in
          { affine;
            naive = (lo +. gate_delay -. delay_radius, hi +. gate_delay +. delay_radius) }
        | Circuit.Input | Circuit.Dff_output _ -> assert false
    end)
  in
  let dom =
    if Propagate.Sanitize.resolve check then
      Propagate.Sanitize.wrap ~circuit ~check:state_check dom
    else dom
  in
  let module E = Propagate.Make ((val dom)) in
  E.run ?domains ?instrument circuit

let arrival (r : result) id = r.Propagate.per_net.(id).affine

(* intersect the affine enclosure with the naive one: both are
   guaranteed, so their intersection is too and is never wider *)
let arrival_interval (r : result) id =
  let alo, ahi = Affine.interval r.per_net.(id).affine in
  let nlo, nhi = r.per_net.(id).naive in
  (Float.max alo nlo, Float.min ahi nhi)

let endpoints_exn (r : result) =
  match Circuit.endpoints r.circuit with
  | [] -> invalid_arg "Interval_sta: circuit has no endpoints"
  | endpoints -> endpoints

let chip_interval r =
  let endpoints = endpoints_exn r in
  (* interval of the max: combine endpoint enclosures conservatively *)
  List.fold_left
    (fun (lo, hi) e ->
      let elo, ehi = arrival_interval r e in
      (Float.max lo elo, Float.max hi ehi))
    (neg_infinity, neg_infinity) endpoints

let naive_chip_interval (r : result) =
  List.fold_left
    (fun (lo, hi) e ->
      let elo, ehi = r.per_net.(e).naive in
      (Float.max lo elo, Float.max hi ehi))
    (neg_infinity, neg_infinity) (endpoints_exn r)
