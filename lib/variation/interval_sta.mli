(** Interval-valued static timing analysis over affine forms (the
    paper's §3.6 alternative to moment propagation).

    Every source arrival and every gate delay is an affine form over its
    own noise symbol; arrivals propagate with SUM = affine add and
    MAX = {!Affine.join_max}.  Reconvergent paths share noise symbols,
    so correlations survive where plain intervals lose them; reported
    intervals are the intersection of the affine and the naive interval
    enclosures (both guaranteed, so the intersection is too, and never
    wider than either).  Any concrete realisation of the uncertainties
    yields arrivals inside the enclosures (property-tested against
    Monte Carlo). *)

type result

val analyze :
  ?gate_delay:float ->
  ?delay_radius:float ->
  ?input_radius:float ->
  ?check:bool ->
  ?domains:int ->
  ?instrument:(Spsta_engine.Propagate.level_stat -> unit) ->
  Spsta_netlist.Circuit.t ->
  result
(** Source arrivals are 0 +- [input_radius] (default 3.0, the +-3 sigma
    window of the paper's N(0,1) inputs); every gate's delay is
    [gate_delay] +- [delay_radius] (defaults 1.0 +- 0).

    Traversal comes from {!Spsta_engine.Propagate}.  Each net draws its
    noise symbols from a private deterministic id range, so [domains]
    (default 1) parallelism is race-free and bit-identical to the
    sequential traversal at every domain count; [instrument] receives
    per-level gate counts and wall-clock timings.  Raises
    [Invalid_argument] if [domains < 1].

    [check] (default: {!Spsta_engine.Propagate.Sanitize.enabled_by_env})
    verifies both enclosures stay finite ordered intervals and always
    intersect (each is guaranteed to contain the true arrival), raising
    {!Spsta_engine.Propagate.Sanitize.Violation} otherwise; when off no
    wrapper is installed. *)

val arrival : result -> Spsta_netlist.Circuit.id -> Affine.t

val arrival_interval : result -> Spsta_netlist.Circuit.id -> float * float

val chip_interval : result -> float * float
(** Enclosure of the latest endpoint arrival. *)

val naive_chip_interval : result -> float * float
(** The same computation with plain intervals (no shared symbols),
    exposed so the two enclosures can be compared. *)
