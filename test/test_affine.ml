module Affine = Spsta_variation.Affine
module Interval_sta = Spsta_variation.Interval_sta
module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Rng = Spsta_util.Rng

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_basics () =
  let ctx = Affine.create_context () in
  let x = Affine.make ctx ~center:2.0 ~radius:1.0 in
  close "center" 2.0 (Affine.center x);
  close "radius" 1.0 (Affine.radius x);
  let lo, hi = Affine.interval x in
  close "lo" 1.0 lo;
  close "hi" 3.0 hi;
  Alcotest.check_raises "negative radius" (Invalid_argument "Affine.make: negative radius")
    (fun () -> ignore (Affine.make ctx ~center:0.0 ~radius:(-1.0)))

let test_correlation_cancels () =
  (* the whole point of affine over intervals: x - x = 0 exactly *)
  let ctx = Affine.create_context () in
  let x = Affine.make ctx ~center:5.0 ~radius:2.0 in
  let d = Affine.sub x x in
  close "x - x center" 0.0 (Affine.center d);
  close "x - x radius" 0.0 (Affine.radius d);
  (* independent uncertainties add radii *)
  let y = Affine.make ctx ~center:0.0 ~radius:3.0 in
  close "independent sum radius" 5.0 (Affine.radius (Affine.add x y))

let test_scale_neg () =
  let ctx = Affine.create_context () in
  let x = Affine.make ctx ~center:1.0 ~radius:2.0 in
  let s = Affine.scale (-2.0) x in
  close "scaled center" (-2.0) (Affine.center s);
  close "scaled radius" 4.0 (Affine.radius s);
  close "neg + add cancels" 0.0 (Affine.radius (Affine.add x (Affine.neg x)))

let test_join_max_disjoint () =
  let ctx = Affine.create_context () in
  let early = Affine.make ctx ~center:0.0 ~radius:1.0 in
  let late = Affine.make ctx ~center:10.0 ~radius:1.0 in
  let m = Affine.join_max ctx early late in
  close "disjoint max = later operand" 10.0 (Affine.center m)

let join_max_sound =
  QCheck.Test.make ~name:"join_max encloses pointwise max" ~count:300
    QCheck.(
      quad (float_range (-5.) 5.) (float_range 0. 3.) (float_range (-5.) 5.) (float_range 0. 3.))
    (fun (c1, r1, c2, r2) ->
      let ctx = Affine.create_context () in
      let a = Affine.make ctx ~center:c1 ~radius:r1 in
      let b = Affine.make ctx ~center:c2 ~radius:r2 in
      let m = Affine.join_max ctx a b in
      let lo, hi = Affine.interval m in
      let rng = Rng.create ~seed:7 in
      let ok = ref true in
      for _ = 1 to 50 do
        let assign = Hashtbl.create 8 in
        let value s =
          match Hashtbl.find_opt assign s with
          | Some v -> v
          | None ->
            let v = (2.0 *. Rng.float rng) -. 1.0 in
            Hashtbl.replace assign s v;
            v
        in
        let va = Affine.eval a value and vb = Affine.eval b value in
        let truth = Float.max va vb in
        if truth < lo -. 1e-9 || truth > hi +. 1e-9 then ok := false
      done;
      !ok)

let test_eval_clamps () =
  let ctx = Affine.create_context () in
  let x = Affine.make ctx ~center:0.0 ~radius:1.0 in
  close "clamped evaluation" 1.0 (Affine.eval x (fun _ -> 5.0))

let test_dominant_symbols () =
  let ctx = Affine.create_context () in
  let a = Affine.make ctx ~center:0.0 ~radius:0.1 in
  let b = Affine.make ctx ~center:0.0 ~radius:5.0 in
  let s = Affine.add a b in
  match Affine.dominant_symbols s 1 with
  | [ (_, c) ] -> close "largest term" 5.0 (Float.abs c)
  | _ -> Alcotest.fail "expected one dominant symbol"

(* interval STA: Monte Carlo realisations stay inside the enclosures *)
let test_interval_sta_containment () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let r = Interval_sta.analyze ~delay_radius:0.2 ~input_radius:3.0 c in
  let rng = Rng.create ~seed:13 in
  let n = Circuit.num_nets c in
  let arrivals = Array.make n 0.0 in
  for _ = 1 to 200 do
    (* uniform realisations inside the model's ranges *)
    List.iter
      (fun s -> arrivals.(s) <- 3.0 *. ((2.0 *. Rng.float rng) -. 1.0))
      (Circuit.sources c);
    Array.iter
      (fun g ->
        match Circuit.driver c g with
        | Circuit.Gate { inputs; _ } ->
          let delay = 1.0 +. (0.2 *. ((2.0 *. Rng.float rng) -. 1.0)) in
          arrivals.(g) <-
            delay +. Array.fold_left (fun acc i -> Float.max acc arrivals.(i)) neg_infinity inputs
        | Circuit.Input | Circuit.Dff_output _ -> assert false)
      (Circuit.topo_gates c);
    List.iter
      (fun e ->
        let lo, hi = Interval_sta.arrival_interval r e in
        if arrivals.(e) < lo -. 1e-9 || arrivals.(e) > hi +. 1e-9 then
          Alcotest.failf "arrival %.3f outside enclosure [%.3f, %.3f] at %s" arrivals.(e) lo hi
            (Circuit.net_name c e))
      (Circuit.endpoints c)
  done

let test_interval_not_wider_than_naive () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let r = Interval_sta.analyze ~delay_radius:0.1 c in
  let alo, ahi = Interval_sta.chip_interval r in
  let nlo, nhi = Interval_sta.naive_chip_interval r in
  Alcotest.(check bool) "intersected enclosure within naive" true
    (alo >= nlo -. 1e-9 && ahi <= nhi +. 1e-9)

let test_reconvergence_tightness () =
  (* diamond where both paths share the same source: the arrival spread
     at the reconvergence point comes only from the shared source, and
     the affine form knows it *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"p" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"q" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "p"; "q" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let r = Interval_sta.analyze ~input_radius:3.0 c in
  let y = Circuit.find_exn c "y" in
  let lo, hi = Interval_sta.arrival_interval r y in
  (* exact answer: a + 2 with a in [-3, 3] -> [-1, 5]; the affine form
     recognises p and q as identical *)
  close "reconvergent lo" (-1.0) lo ~tol:1e-9;
  close "reconvergent hi" 5.0 hi ~tol:1e-9

let test_interval_parallel_bit_identical () =
  (* every net owns a private deterministic symbol range, so the
     ?domains schedule must reproduce the sequential affine forms
     exactly — same centers, same radii, same enclosures *)
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let seq = Interval_sta.analyze ~delay_radius:0.2 ~input_radius:3.0 c in
  List.iter
    (fun domains ->
      let par = Interval_sta.analyze ~delay_radius:0.2 ~input_radius:3.0 ~domains c in
      for i = 0 to Circuit.num_nets c - 1 do
        let name = Printf.sprintf "%s@%d" (Circuit.net_name c i) domains in
        let a = Interval_sta.arrival seq i and b = Interval_sta.arrival par i in
        close (name ^ " center") (Affine.center a) (Affine.center b) ~tol:0.0;
        close (name ^ " radius") (Affine.radius a) (Affine.radius b) ~tol:0.0;
        let alo, ahi = Interval_sta.arrival_interval seq i in
        let blo, bhi = Interval_sta.arrival_interval par i in
        close (name ^ " lo") alo blo ~tol:0.0;
        close (name ^ " hi") ahi bhi ~tol:0.0
      done;
      let alo, ahi = Interval_sta.chip_interval seq in
      let blo, bhi = Interval_sta.chip_interval par in
      close "chip lo" alo blo ~tol:0.0;
      close "chip hi" ahi bhi ~tol:0.0;
      let nlo, nhi = Interval_sta.naive_chip_interval seq in
      let mlo, mhi = Interval_sta.naive_chip_interval par in
      close "naive chip lo" nlo mlo ~tol:0.0;
      close "naive chip hi" nhi mhi ~tol:0.0)
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "interval STA parallel bit-identical" `Quick
      test_interval_parallel_bit_identical;
    Alcotest.test_case "correlation cancels" `Quick test_correlation_cancels;
    Alcotest.test_case "scale/neg" `Quick test_scale_neg;
    Alcotest.test_case "disjoint max" `Quick test_join_max_disjoint;
    QCheck_alcotest.to_alcotest join_max_sound;
    Alcotest.test_case "eval clamps" `Quick test_eval_clamps;
    Alcotest.test_case "dominant symbols" `Quick test_dominant_symbols;
    Alcotest.test_case "interval STA containment" `Quick test_interval_sta_containment;
    Alcotest.test_case "no wider than naive" `Quick test_interval_not_wider_than_naive;
    Alcotest.test_case "reconvergence tightness" `Quick test_reconvergence_tightness;
  ]
