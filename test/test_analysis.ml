(* lib/analysis: the dataflow fixpoint framework and its four passes,
   plus the consumers that make the facts pay — the sizer's prune hook
   and Ssta's constant mask.

   The randomised properties pin the passes to independent oracles:
   constant propagation against four-value logic simulation under fully
   pinned sources, probability intervals against BDD-exact signal
   probabilities, and reconvergence against circuits constructed to have
   none. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Dataflow = Spsta_analysis.Dataflow
module Constprop = Spsta_analysis.Constprop
module Reconvergence = Spsta_analysis.Reconvergence
module Observability = Spsta_analysis.Observability
module Crit_bounds = Spsta_analysis.Crit_bounds
module Static = Spsta_analysis.Static
module Ssta = Spsta_ssta.Ssta
module Normal = Spsta_dist.Normal
module Sizer = Spsta_opt.Sizer
module Sized_library = Spsta_netlist.Sized_library

let id c name = Circuit.find_exn c name

(* a -> {b = NOT a, c = BUF a} -> d = AND(b, c): one two-branch region *)
let diamond () =
  let b = Circuit.Builder.create ~name:"diamond" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"nb" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"cb" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"d" Gate_kind.And [ "nb"; "cb" ];
  Circuit.Builder.add_output b "d";
  Circuit.Builder.finalize b

(* ---------- framework ---------- *)

(* A minimal forward pass — recompute topological levels — exercises the
   arena, the CSR sweep order and the stats contract without leaning on
   any shipped pass. *)
let test_dataflow_level_pass () =
  let circuit = diamond () in
  let arena = Dataflow.Arena.create circuit in
  let lane = Dataflow.Arena.ints arena "lvl" ~init:0 in
  let csr = Circuit.csr circuit in
  let stats =
    Dataflow.run circuit
      (module struct
        type t = int array

        let name = "level"
        let direction = `Forward
        let state = lane

        let transfer state (csr : Circuit.csr) k =
          let out = csr.Circuit.gate_net.(k) in
          let lo = csr.Circuit.fanin_off.(k) and hi = csr.Circuit.fanin_off.(k + 1) in
          let v = ref 0 in
          for i = lo to hi - 1 do
            v := max !v (state.(csr.Circuit.fanin.(i)) + 1)
          done;
          if state.(out) <> !v then begin
            state.(out) <- !v;
            true
          end
          else false

        let boundary _ _ = false
      end)
  in
  ignore csr;
  for n = 0 to Circuit.num_nets circuit - 1 do
    Alcotest.(check int)
      (Printf.sprintf "level of %s" (Circuit.net_name circuit n))
      (Circuit.level circuit n) lane.(n)
  done;
  Alcotest.(check bool) "one round suffices on a combinational circuit" true
    (stats.Dataflow.rounds = 1 && stats.Dataflow.gate_visits = Circuit.gate_count circuit)

let test_arena_lanes () =
  let circuit = diamond () in
  let arena = Dataflow.Arena.create circuit in
  let f = Dataflow.Arena.floats arena "x" ~init:1.5 in
  Alcotest.(check (float 0.0)) "float lane initialised" 1.5 f.(0);
  f.(0) <- 9.0;
  let f' = Dataflow.Arena.floats arena "x" ~init:0.0 in
  Alcotest.(check (float 0.0)) "same lane on re-request" 9.0 f'.(0);
  Alcotest.(check bool) "mem sees the lane" true (Dataflow.Arena.mem arena "x");
  Alcotest.(check bool) "mem misses unknown lanes" false (Dataflow.Arena.mem arena "y");
  Alcotest.check_raises "type clash rejected"
    (Invalid_argument "Arena: lane \"x\" has another type")
    (fun () -> ignore (Dataflow.Arena.bytes arena "x" ~init:'\000'))

(* ---------- random circuits ---------- *)

let comb_kinds =
  [| Gate_kind.And; Gate_kind.Nand; Gate_kind.Or; Gate_kind.Nor; Gate_kind.Xor;
     Gate_kind.Xnor; Gate_kind.Not; Gate_kind.Buf |]

(* (n_inputs, [(kind_ix, op1_raw, op2_raw)]): raw operand indices are
   reduced mod the nets available when the gate is built, so every
   generated spec is a valid combinational DAG (duplicate literals and
   arbitrary fanout/reconvergence included). *)
let gen_comb_spec =
  QCheck.Gen.(
    pair (int_range 2 4)
      (list_size (int_range 1 12) (triple (int_range 0 7) nat nat)))

let build_comb (n_in, gates) =
  let b = Circuit.Builder.create ~name:"rand" () in
  let nets = ref [] in
  for i = 0 to n_in - 1 do
    let name = Printf.sprintf "i%d" i in
    Circuit.Builder.add_input b name;
    nets := name :: !nets
  done;
  List.iteri
    (fun j (k, o1, o2) ->
      let avail = Array.of_list (List.rev !nets) in
      let n = Array.length avail in
      let kind = comb_kinds.(k mod Array.length comb_kinds) in
      let ops =
        if Gate_kind.max_arity kind = Some 1 then [ avail.(o1 mod n) ]
        else [ avail.(o1 mod n); avail.(o2 mod n) ]
      in
      let name = Printf.sprintf "g%d" j in
      Circuit.Builder.add_gate b ~output:name kind ops;
      nets := name :: !nets)
    gates;
  (match !nets with last :: _ -> Circuit.Builder.add_output b last | [] -> assert false);
  Circuit.Builder.finalize b

let comb_arbitrary =
  QCheck.make ~print:(fun (n, gs) -> Printf.sprintf "%d inputs, %d gates" n (List.length gs))
    gen_comb_spec

(* ---------- constants & intervals ---------- *)

(* With every source pinned to exactly 0 or 1, the Fréchet interval of
   every net collapses to a point and must equal the four-value logic
   simulation of the same vector — including through duplicate literals
   and reconvergence, where eq. 5-style independence would drift. *)
let constprop_matches_sim =
  QCheck.Test.make ~name:"pinned sources: constprop = logic sim" ~count:300
    QCheck.(pair comb_arbitrary (make Gen.nat))
    (fun (spec, bits) ->
      let circuit = build_comb spec in
      let pin net =
        let name = Circuit.net_name circuit net in
        let i = Scanf.sscanf name "i%d" Fun.id in
        (bits lsr i) land 1 = 1
      in
      let t = Constprop.run ~p_source:(fun s -> if pin s then 1.0 else 0.0) circuit in
      let sim =
        Spsta_sim.Logic_sim.run circuit ~source_values:(fun s ->
            ((if pin s then Value4.One else Value4.Zero), 0.0))
      in
      let ok = ref true in
      for n = 0 to Circuit.num_nets circuit - 1 do
        let expected = Value4.final sim.Spsta_sim.Logic_sim.values.(n) in
        if Constprop.const_of t n <> Some expected then ok := false
      done;
      !ok)

(* Sound intervals: the BDD-exact probability of every net lies inside
   [lo, hi], whatever the reconvergence structure. *)
let interval_contains_exact =
  QCheck.Test.make ~name:"interval contains BDD-exact probability" ~count:200 comb_arbitrary
    (fun spec ->
      let circuit = build_comb spec in
      let t = Constprop.run ~p_source:(fun _ -> 0.5) circuit in
      let bdd = Spsta_bdd.Circuit_bdd.build circuit in
      let ok = ref true in
      for n = 0 to Circuit.num_nets circuit - 1 do
        let exact = Spsta_bdd.Circuit_bdd.exact_prob_one bdd ~p_source:(fun _ -> 0.5) n in
        let lo, hi = Constprop.interval t n in
        if exact < lo -. 1e-9 || exact > hi +. 1e-9 then ok := false
      done;
      !ok)

let test_constprop_folding () =
  let b = Circuit.Builder.create ~name:"fold" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "x";
  (* a XOR a is constant 0 without any pinned source; AND with it folds *)
  Circuit.Builder.add_gate b ~output:"z" Gate_kind.Xor [ "a"; "a" ];
  Circuit.Builder.add_gate b ~output:"g" Gate_kind.And [ "z"; "x" ];
  Circuit.Builder.add_gate b ~output:"po" Gate_kind.Or [ "g"; "x" ];
  Circuit.Builder.add_output b "po";
  let circuit = Circuit.Builder.finalize b in
  let t = Constprop.run circuit in
  Alcotest.(check (option bool)) "a XOR a = 0" (Some false) (Constprop.const_of t (id circuit "z"));
  Alcotest.(check (option bool)) "AND folds through controlling 0" (Some false)
    (Constprop.const_of t (id circuit "g"));
  Alcotest.(check (option bool)) "po stays free" None (Constprop.const_of t (id circuit "po"));
  Alcotest.(check int) "two discovered constants" 2 (Constprop.num_constants t);
  let mask = Constprop.mask t in
  Alcotest.(check int) "mask covers every net" (Circuit.num_nets circuit) (Bytes.length mask);
  Alcotest.(check char) "constant net masked" '\001' (Bytes.get mask (id circuit "z"));
  Alcotest.(check char) "free net unmasked" '\000' (Bytes.get mask (id circuit "po"))

(* ---------- reconvergence ---------- *)

let test_reconv_diamond () =
  let circuit = diamond () in
  let t = Reconvergence.run circuit in
  Alcotest.(check int) "one region" 1 (Reconvergence.num_regions t);
  (match Reconvergence.regions t with
  | [ r ] ->
    Alcotest.(check int) "stem is a" (id circuit "a") r.Reconvergence.stem;
    Alcotest.(check int) "merge is d" (id circuit "d") r.Reconvergence.merge;
    Alcotest.(check int) "both branches remerge" 2 r.Reconvergence.width;
    Alcotest.(check int) "two levels deep" 2 r.Reconvergence.depth;
    Alcotest.(check (option int)) "two interior nets" (Some 2) r.Reconvergence.gates
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs));
  Alcotest.(check bool) "a heads the region" true (Reconvergence.is_stem t (id circuit "a"));
  Alcotest.(check bool) "merge is tainted" true (Reconvergence.tainted t (id circuit "d"));
  Alcotest.(check bool) "branches are not" false (Reconvergence.tainted t (id circuit "nb"))

(* fanout-1 spec: each gate consumes nets that nothing else will ever
   consume (fresh inputs or previously unconsumed outputs), so no stem
   exists anywhere *)
let gen_tree_spec = QCheck.Gen.(list_size (int_range 1 10) (pair (int_range 0 5) nat))

let build_tree spec =
  let b = Circuit.Builder.create ~name:"tree" () in
  let pool = Queue.create () in
  let n_in = ref 0 in
  let fresh () =
    incr n_in;
    let s = Printf.sprintf "i%d" !n_in in
    Circuit.Builder.add_input b s;
    s
  in
  let take raw = if (not (Queue.is_empty pool)) && raw land 1 = 1 then Queue.pop pool else fresh () in
  List.iteri
    (fun j (k, raw) ->
      let kind = comb_kinds.(k mod 6) (* binary kinds only *) in
      let x = take raw and y = take (raw lsr 1) in
      let name = Printf.sprintf "g%d" j in
      Circuit.Builder.add_gate b ~output:name kind [ x; y ];
      Queue.push name pool)
    spec;
  Queue.iter (fun n -> Circuit.Builder.add_output b n) pool;
  Circuit.Builder.finalize b

let tree_has_no_regions =
  QCheck.Test.make ~name:"fanout-1 trees have zero regions" ~count:300
    (QCheck.make ~print:(fun s -> Printf.sprintf "%d gates" (List.length s)) gen_tree_spec)
    (fun spec ->
      let circuit = build_tree spec in
      let t = Reconvergence.run circuit in
      Reconvergence.num_regions t = 0 && Reconvergence.num_tainted t = 0)

(* ---------- observability ---------- *)

let test_observability_constant_blocking () =
  let b = Circuit.Builder.create ~name:"blocked" () in
  Circuit.Builder.add_input b "zero";
  Circuit.Builder.add_input b "x";
  Circuit.Builder.add_input b "y";
  Circuit.Builder.add_gate b ~output:"nx" Gate_kind.Not [ "x" ];
  Circuit.Builder.add_gate b ~output:"g" Gate_kind.And [ "zero"; "nx" ];
  Circuit.Builder.add_gate b ~output:"po" Gate_kind.Or [ "g"; "y" ];
  Circuit.Builder.add_output b "po";
  let circuit = Circuit.Builder.finalize b in
  let consts =
    Constprop.run ~p_source:(fun s -> if Circuit.net_name circuit s = "zero" then 0.0 else 0.5)
      circuit
  in
  let t = Observability.run ~constants:consts circuit in
  Alcotest.(check bool) "nx is dead behind the constant AND" false
    (Observability.observable t (id circuit "nx"));
  Alcotest.(check bool) "po observable" true (Observability.observable t (id circuit "po"));
  (* nx is the strict improvement: structurally alive, killed only by
     the constant fact; g itself is a constant, so it is constprop's
     finding, not this pass's *)
  Alcotest.(check (list int)) "sharpened = [nx]" [ id circuit "nx" ] (Observability.sharpened t);
  (* without constant facts the pass degrades to structural reachability *)
  let structural = Observability.run circuit in
  Alcotest.(check int) "no structural dead logic here" 0 (Observability.num_dead structural);
  Alcotest.(check int) "so nothing sharpened either" 0 (Observability.num_sharpened structural)

(* ---------- criticality bounds ---------- *)

let test_crit_bounds_unit_delay () =
  let b = Circuit.Builder.create ~name:"crit" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "s";
  Circuit.Builder.add_gate b ~output:"g1" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"g2" Gate_kind.Not [ "g1" ];
  Circuit.Builder.add_gate b ~output:"g3" Gate_kind.Not [ "g2" ];
  Circuit.Builder.add_gate b ~output:"h1" Gate_kind.Not [ "s" ];
  Circuit.Builder.add_output b "g3";
  Circuit.Builder.add_output b "h1";
  let circuit = Circuit.Builder.finalize b in
  let t = Crit_bounds.run circuit in
  Alcotest.(check (float 1e-12)) "t_lb is the long chain" 3.0 (Crit_bounds.t_lb t);
  let lo, hi = Crit_bounds.arrival_bounds t (id circuit "g2") in
  Alcotest.(check bool) "unit-delay bounds collapse to the level" true (lo = 2.0 && hi = 2.0);
  Alcotest.(check bool) "short branch can never be critical" true
    (Crit_bounds.never_critical t (id circuit "h1"));
  Alcotest.(check bool) "chain gates stay candidates" false
    (Crit_bounds.never_critical t (id circuit "g1"));
  Alcotest.(check int) "exactly the short branch" 1 (Crit_bounds.num_never_critical t)

let test_sizer_prune () =
  let b = Circuit.Builder.create ~name:"prune" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "c";
  Circuit.Builder.add_gate b ~output:"g1" Gate_kind.And [ "a"; "c" ];
  Circuit.Builder.add_gate b ~output:"g2" Gate_kind.Or [ "g1"; "c" ];
  Circuit.Builder.add_gate b ~output:"po" Gate_kind.Not [ "g2" ];
  Circuit.Builder.add_output b "po";
  let circuit = Circuit.Builder.finalize b in
  let sized = Sized_library.default in
  (* prune everything: phase A must commit no upsize, and every rejected
     candidate is counted *)
  let report = Sizer.run ~prune:(fun _ -> true) sized circuit in
  Alcotest.(check bool) "rejections counted" true (report.Sizer.pruned > 0);
  Alcotest.(check bool) "no upsize survives a total prune" true
    (List.for_all (fun m -> m.Sizer.direction = `Down) report.Sizer.moves);
  let free = Sizer.run sized circuit in
  Alcotest.(check int) "no prune, no rejections" 0 free.Sizer.pruned

(* ---------- Ssta constant mask ---------- *)

let test_ssta_constant_mask () =
  let circuit = diamond () in
  (* deterministic launch so the Clark MAX at d is exact *)
  let zero = Normal.make ~mu:0.0 ~sigma:0.0 in
  let input_arrival = { Ssta.rise = zero; fall = zero } in
  let mask = Bytes.make (Circuit.num_nets circuit) '\000' in
  Bytes.set mask (id circuit "nb") '\001';
  let r = Ssta.analyze ~input_arrival ~constant_mask:mask circuit in
  let masked = (Ssta.arrival r (id circuit "nb")).Ssta.rise in
  Alcotest.(check (float 1e-12)) "masked gate never transitions" 0.0 (Normal.mean masked);
  let live = (Ssta.arrival r (id circuit "d")).Ssta.rise in
  (* d still waits for the unmasked branch cb (arrival 1) plus its own delay *)
  Alcotest.(check (float 1e-12)) "downstream sees the live branch" 2.0 (Normal.mean live);
  let plain = Ssta.analyze ~input_arrival circuit in
  Alcotest.(check (float 1e-12)) "unmasked branch arrives at 1" 1.0
    (Normal.mean (Ssta.arrival plain (id circuit "nb")).Ssta.rise);
  Alcotest.(check (float 1e-12)) "unmasked run agrees at d" 2.0
    (Normal.mean (Ssta.arrival plain (id circuit "d")).Ssta.rise);
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Ssta: constant_mask length differs from the circuit's net count")
    (fun () -> ignore (Ssta.analyze ~constant_mask:(Bytes.create 1) circuit))

(* ---------- orchestrator ---------- *)

let test_static_orchestrator () =
  let circuit = diamond () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "pass name %s round-trips" (Static.pass_name p))
        true
        (Static.pass_of_name (Static.pass_name p) = Some p))
    Static.all_passes;
  Alcotest.(check bool) "unknown pass rejected" true (Static.pass_of_name "bogus" = None);
  let only_const = Static.run ~passes:[ `Constants ] circuit in
  Alcotest.(check bool) "selected pass ran" true (only_const.Static.constants <> None);
  Alcotest.(check bool) "unselected passes did not" true
    (only_const.Static.reconvergence = None && only_const.Static.criticality = None);
  let all = Static.run circuit in
  let names = List.map fst (Static.fact_counts all) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (Printf.sprintf "fact %s reported" expected) true
        (List.mem expected names))
    [ "constants"; "bounded_nets"; "reconvergent_regions"; "tainted_nets";
      "unobservable_gates"; "sharpened_dead"; "never_critical_gates" ];
  Alcotest.(check int) "total is the sum" (List.fold_left (fun a (_, c) -> a + c) 0
      (Static.fact_counts all))
    (Static.total_facts all)

let suite =
  [ Alcotest.test_case "dataflow: level pass reaches fixpoint" `Quick test_dataflow_level_pass;
    Alcotest.test_case "dataflow: arena lane discipline" `Quick test_arena_lanes;
    Alcotest.test_case "constprop: structural folding and mask" `Quick test_constprop_folding;
    QCheck_alcotest.to_alcotest constprop_matches_sim;
    QCheck_alcotest.to_alcotest interval_contains_exact;
    Alcotest.test_case "reconvergence: diamond region" `Quick test_reconv_diamond;
    QCheck_alcotest.to_alcotest tree_has_no_regions;
    Alcotest.test_case "observability: constant-blocked cone" `Quick
      test_observability_constant_blocking;
    Alcotest.test_case "crit bounds: unit-delay chain" `Quick test_crit_bounds_unit_delay;
    Alcotest.test_case "sizer: prune hook" `Quick test_sizer_prune;
    Alcotest.test_case "ssta: constant mask" `Quick test_ssta_constant_mask;
    Alcotest.test_case "static: orchestrator" `Quick test_static_orchestrator ]
