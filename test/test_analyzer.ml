module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Normal = Spsta_dist.Normal
module Input_spec = Spsta_sim.Input_spec
module Monte_carlo = Spsta_sim.Monte_carlo
module Analyzer = Spsta_core.Analyzer
module Four_value = Spsta_core.Four_value
module A = Analyzer.Moments

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let test_source_signal () =
  let s = A.source_signal Input_spec.case_ii in
  close "p_rise mass" 0.02 (Spsta_dist.Mixture.total_weight s.A.rise);
  close "p_fall mass" 0.08 (Spsta_dist.Mixture.total_weight s.A.fall);
  close "rise mean" 0.0 (Spsta_dist.Mixture.mean s.A.rise);
  close "probs" 0.75 s.A.probs.Four_value.p_zero

(* hand-computed eq. 12 for a two-input AND with case-I inputs and
   N(0,1) arrivals, unit delay:
     P_rise = 3/16; rise mean = 1 + (1/sqrt(pi))/3;
     second moment of every component is 1, so
     rise sigma = sqrt(1 - (1/(3 sqrt(pi)))^2) *)
let test_and_gate_eq12 () =
  let x = A.source_signal Input_spec.case_i in
  let y = A.gate_output Gate_kind.And [ x; x ] in
  close "P_rise" (3.0 /. 16.0) y.A.probs.Four_value.p_rise ~tol:1e-12;
  let mu, sigma, p = A.transition_stats y `Rise in
  close "rise probability" (3.0 /. 16.0) p ~tol:1e-12;
  let expected_mean = 1.0 +. (1.0 /. (3.0 *. sqrt Float.pi)) in
  close "rise mean" expected_mean mu ~tol:1e-6;
  let m = 1.0 /. (3.0 *. sqrt Float.pi) in
  close "rise sigma" (sqrt (1.0 -. (m *. m))) sigma ~tol:1e-6

let test_weighted_sum_symmetry () =
  (* AND with equal-probability inputs: output rise mass equals fall
     mass, and (by symmetry of case I) their shapes mirror *)
  let x = A.source_signal Input_spec.case_i in
  let y = A.gate_output Gate_kind.And [ x; x ] in
  close "rise mass = fall mass... (not equal for AND!)" y.A.probs.Four_value.p_rise
    y.A.probs.Four_value.p_fall ~tol:1e-12

let test_glitch_filtering () =
  let rise =
    A.source_signal (Input_spec.make ~p_zero:0.0 ~p_one:0.0 ~p_rise:1.0 ~p_fall:0.0 ())
  in
  let fall =
    A.source_signal (Input_spec.make ~p_zero:0.0 ~p_one:0.0 ~p_rise:0.0 ~p_fall:1.0 ())
  in
  let y = A.gate_output Gate_kind.And [ rise; fall ] in
  close "steady zero" 1.0 y.A.probs.Four_value.p_zero;
  close "no rise mass" 0.0 (Spsta_dist.Mixture.total_weight y.A.rise);
  close "no fall mass" 0.0 (Spsta_dist.Mixture.total_weight y.A.fall)

let test_inversion_swaps_tops () =
  let x = A.source_signal Input_spec.case_ii in
  let y = A.gate_output Gate_kind.And [ x; x ] in
  let ny = A.gate_output Gate_kind.Nand [ x; x ] in
  let y_rise_mu, _, y_rise_p = A.transition_stats y `Rise in
  let ny_fall_mu, _, ny_fall_p = A.transition_stats ny `Fall in
  close "NAND fall = AND rise probability" y_rise_p ny_fall_p ~tol:1e-12;
  close "NAND fall = AND rise mean" y_rise_mu ny_fall_mu ~tol:1e-12

let test_not_shifts () =
  let x = A.source_signal Input_spec.case_i in
  let y = A.gate_output Gate_kind.Not [ x ] in
  let mu, sigma, p = A.transition_stats y `Rise in
  close "NOT rise = input fall prob" 0.25 p ~tol:1e-12;
  close "NOT rise mean = fall + delay" 1.0 mu ~tol:1e-9;
  close "NOT keeps sigma" 1.0 sigma ~tol:1e-9

let test_gate_delay () =
  let x = A.source_signal Input_spec.case_i in
  let y = A.gate_output ~gate_delay:2.5 Gate_kind.Buf [ x ] in
  let mu, _, _ = A.transition_stats y `Rise in
  close "custom delay" 2.5 mu ~tol:1e-9

let test_fanin_fold_consistency () =
  (* pairwise folding (forced) must agree with direct enumeration on
     probabilities exactly and on moments closely *)
  let x = A.source_signal Input_spec.case_i in
  let inputs = [ x; x; x; x ] in
  let direct = A.gate_output ~max_enumerated_fanin:6 Gate_kind.And inputs in
  let folded = A.gate_output ~max_enumerated_fanin:2 Gate_kind.And inputs in
  close "P_rise equal" direct.A.probs.Four_value.p_rise folded.A.probs.Four_value.p_rise
    ~tol:1e-9;
  close "P_one equal" direct.A.probs.Four_value.p_one folded.A.probs.Four_value.p_one ~tol:1e-9;
  let dm, ds, _ = A.transition_stats direct `Rise in
  let fm, fs, _ = A.transition_stats folded `Rise in
  close "rise mean close" dm fm ~tol:0.05;
  close "rise sigma close" ds fs ~tol:0.05

(* on a fanout-free tree, SPSTA's probabilities are exact: MC converges
   to them *)
let tree_circuit () =
  let b = Circuit.Builder.create () in
  List.iter (Circuit.Builder.add_input b) [ "a"; "b"; "c"; "d" ];
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Nor [ "c"; "d" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Or [ "n1"; "n2" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let test_tree_vs_monte_carlo () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  let spsta = A.analyze c ~spec in
  let mc = Monte_carlo.simulate ~runs:40_000 ~seed:17 c ~spec in
  let y = Circuit.find_exn c "y" in
  let s = A.signal spsta y in
  let m = Monte_carlo.stats mc y in
  close "P_rise vs MC" (Monte_carlo.p_rise m) s.A.probs.Four_value.p_rise ~tol:0.01;
  close "P_one vs MC" (Monte_carlo.p_one m) s.A.probs.Four_value.p_one ~tol:0.01;
  let mu, sigma, _ = A.transition_stats s `Rise in
  close "rise mean vs MC" (Spsta_util.Stats.acc_mean m.Monte_carlo.rise_times) mu ~tol:0.06;
  close "rise sigma vs MC" (Spsta_util.Stats.acc_stddev m.Monte_carlo.rise_times) sigma ~tol:0.06

let test_backend_agreement () =
  (* moment and discretised backends agree on s27 endpoint moments *)
  let module B = (val Spsta_core.Top.discrete_backend ~dt:0.02 ()) in
  let module D = Analyzer.Make (B) in
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec _ = Input_spec.case_i in
  let moments = A.analyze c ~spec in
  let grid = D.analyze c ~spec in
  List.iter
    (fun e ->
      let mm, ms, mp = A.transition_stats (A.signal moments e) `Rise in
      let gm, gs, gp = D.transition_stats (D.signal grid e) `Rise in
      close "P agreement" mp gp ~tol:1e-6;
      close "mean agreement" mm gm ~tol:0.05;
      close "sigma agreement" ms gs ~tol:0.05)
    (Circuit.endpoints c)

let test_critical_endpoint_dominates () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let spec _ = Input_spec.case_i in
  let r = A.analyze c ~spec in
  let e = A.critical_endpoint r `Rise in
  let mean_of x =
    let mu, _, p = A.transition_stats (A.signal r x) `Rise in
    if p > 0.0 then mu else neg_infinity
  in
  List.iter
    (fun other -> Alcotest.(check bool) "dominates" true (mean_of e >= mean_of other -. 1e-9))
    (Circuit.endpoints c)

let test_mass_equals_probability () =
  (* invariant: the t.o.p. mass equals the transition probability at
     every net of a real circuit *)
  let c = Spsta_experiments.Benchmarks.load "s298" in
  let spec _ = Input_spec.case_ii in
  let r = A.analyze c ~spec in
  Array.iter
    (fun g ->
      let s = A.signal r g in
      close "rise mass" s.A.probs.Four_value.p_rise (Spsta_dist.Mixture.total_weight s.A.rise)
        ~tol:1e-6;
      close "fall mass" s.A.probs.Four_value.p_fall (Spsta_dist.Mixture.total_weight s.A.fall)
        ~tol:1e-6)
    (Circuit.topo_gates c)

(* the ?domains levelized schedule must be bit-identical to the
   sequential traversal — every probability, mean, sigma, and (for the
   grid backend) every bin — on real circuits, for both backends *)
let test_parallel_bit_identical () =
  let spec _ = Input_spec.case_ii in
  List.iter
    (fun name ->
      let c = Spsta_experiments.Benchmarks.load name in
      let seq = A.analyze c ~spec in
      List.iter
        (fun domains ->
          let par = A.analyze ~domains c ~spec in
          for g = 0 to Circuit.num_nets c - 1 do
            let a = A.signal seq g and b = A.signal par g in
            List.iter
              (fun dir ->
                let ma, sa, pa = A.transition_stats a dir in
                let mb, sb, pb = A.transition_stats b dir in
                close "probability identical" pa pb ~tol:0.0;
                close "mean identical" ma mb ~tol:0.0;
                close "sigma identical" sa sb ~tol:0.0)
              [ `Rise; `Fall ]
          done)
        [ 2; 3 ])
    [ "s27"; "s386" ]

let test_parallel_bit_identical_grid () =
  let module B = (val Spsta_core.Top.discrete_backend ~dt:0.05 ()) in
  let module D = Analyzer.Make (B) in
  let spec _ = Input_spec.case_i in
  List.iter
    (fun name ->
      let c = Spsta_experiments.Benchmarks.load name in
      let seq = D.analyze c ~spec in
      let par = D.analyze ~domains:3 c ~spec in
      for g = 0 to Circuit.num_nets c - 1 do
        let a = D.signal seq g and b = D.signal par g in
        Alcotest.(check (list (pair (float 0.0) (float 0.0))))
          "rise grid bit-identical" (Spsta_dist.Discrete.series a.D.rise)
          (Spsta_dist.Discrete.series b.D.rise);
        Alcotest.(check (list (pair (float 0.0) (float 0.0))))
          "fall grid bit-identical" (Spsta_dist.Discrete.series a.D.fall)
          (Spsta_dist.Discrete.series b.D.fall)
      done)
    [ "s27"; "s386" ]

let test_domains_validation () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  Alcotest.check_raises "zero domains" (Invalid_argument "Parallel: domains must be positive")
    (fun () -> ignore (A.analyze ~domains:0 c ~spec))

let test_empty_inputs_rejected () =
  Alcotest.check_raises "no inputs" (Invalid_argument "Analyzer.gate_output: no inputs")
    (fun () -> ignore (A.gate_output Gate_kind.And []))

let suite =
  [
    Alcotest.test_case "source signal" `Quick test_source_signal;
    Alcotest.test_case "AND gate eq. 12 by hand" `Quick test_and_gate_eq12;
    Alcotest.test_case "AND rise/fall symmetry (case I)" `Quick test_weighted_sum_symmetry;
    Alcotest.test_case "glitch filtering" `Quick test_glitch_filtering;
    Alcotest.test_case "inversion swaps tops" `Quick test_inversion_swaps_tops;
    Alcotest.test_case "NOT shifts and swaps" `Quick test_not_shifts;
    Alcotest.test_case "gate delay parameter" `Quick test_gate_delay;
    Alcotest.test_case "fan-in fold consistency" `Quick test_fanin_fold_consistency;
    Alcotest.test_case "exact on trees vs MC" `Slow test_tree_vs_monte_carlo;
    Alcotest.test_case "moment vs grid backends" `Quick test_backend_agreement;
    Alcotest.test_case "critical endpoint dominance" `Quick test_critical_endpoint_dominates;
    Alcotest.test_case "top mass = transition probability" `Quick test_mass_equals_probability;
    Alcotest.test_case "parallel bit-identical (moments)" `Quick test_parallel_bit_identical;
    Alcotest.test_case "parallel bit-identical (grid)" `Quick test_parallel_bit_identical_grid;
    Alcotest.test_case "domains validation" `Quick test_domains_validation;
    Alcotest.test_case "empty inputs rejected" `Quick test_empty_inputs_rejected;
  ]
