module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Bounds_ssta = Spsta_ssta.Bounds_ssta
module Normal = Spsta_dist.Normal
module Rng = Spsta_util.Rng

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let buffer_chain n =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  let prev = ref "a" in
  for i = 1 to n do
    let name = Printf.sprintf "n%d" i in
    Circuit.Builder.add_gate b ~output:name Gate_kind.Buf [ !prev ];
    prev := name
  done;
  Circuit.Builder.add_output b !prev;
  Circuit.Builder.finalize b

let test_chain_bounds_tight () =
  (* single-input gates: no MAX, bounds collapse to the exact cdf *)
  let c = buffer_chain 3 in
  let r = Bounds_ssta.analyze ~dt:0.05 c in
  let out = List.hd (Circuit.primary_outputs c) in
  let b = Bounds_ssta.band r out in
  Array.iteri
    (fun i t ->
      close "band is tight on a chain" b.Bounds_ssta.lower.(i) b.Bounds_ssta.upper.(i) ~tol:1e-9;
      close "matches the shifted normal" (Normal.cdf (Normal.make ~mu:3.0 ~sigma:1.0) t)
        b.Bounds_ssta.upper.(i) ~tol:0.02)
    b.Bounds_ssta.times

let test_band_ordering () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let r = Bounds_ssta.analyze c in
  List.iter
    (fun e ->
      let b = Bounds_ssta.band r e in
      Array.iteri
        (fun i _ ->
          if b.Bounds_ssta.lower.(i) > b.Bounds_ssta.upper.(i) +. 1e-9 then
            Alcotest.fail "lower bound exceeds upper bound")
        b.Bounds_ssta.times)
    (Circuit.endpoints c)

let test_bounds_monotone () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let r = Bounds_ssta.analyze c in
  let b = Bounds_ssta.chip_band r in
  let check name arr =
    let previous = ref 0.0 in
    Array.iter
      (fun x ->
        if x < !previous -. 1e-9 then Alcotest.failf "%s cdf bound not monotone" name;
        previous := x)
      arr
  in
  check "lower" b.Bounds_ssta.lower;
  check "upper" b.Bounds_ssta.upper

(* reference: a path-delay Monte Carlo with real shared-path
   correlations; its empirical cdf must lie within the band *)
let max_recursion_mc ~runs ~seed circuit =
  let rng = Rng.create ~seed in
  let n = Circuit.num_nets circuit in
  let arrivals = Array.make n 0.0 in
  let endpoints = Circuit.endpoints circuit in
  let samples = Array.make runs 0.0 in
  for run = 0 to runs - 1 do
    List.iter
      (fun s -> arrivals.(s) <- Rng.gaussian rng ~mu:0.0 ~sigma:1.0)
      (Circuit.sources circuit);
    Array.iter
      (fun g ->
        match Circuit.driver circuit g with
        | Circuit.Gate { inputs; _ } ->
          arrivals.(g) <-
            1.0 +. Array.fold_left (fun acc i -> Float.max acc arrivals.(i)) neg_infinity inputs
        | Circuit.Input | Circuit.Dff_output _ -> assert false)
      (Circuit.topo_gates circuit);
    samples.(run) <-
      List.fold_left (fun acc e -> Float.max acc arrivals.(e)) neg_infinity endpoints
  done;
  samples

let test_mc_within_chip_band () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let r = Bounds_ssta.analyze c in
  let b = Bounds_ssta.chip_band r in
  let runs = 20_000 in
  let samples = max_recursion_mc ~runs ~seed:7 c in
  Array.sort compare samples;
  let empirical t =
    (* fraction of samples <= t *)
    let rec count lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if samples.(mid) <= t then count (mid + 1) hi else count lo mid
      end
    in
    float_of_int (count 0 runs) /. float_of_int runs
  in
  Array.iteri
    (fun i t ->
      let f = empirical t in
      (* 3-sigma sampling slack on top of the guaranteed bounds *)
      let slack = 3.0 *. sqrt (f *. (1.0 -. f) /. float_of_int runs) +. 0.01 in
      if f < b.Bounds_ssta.lower.(i) -. slack || f > b.Bounds_ssta.upper.(i) +. slack then
        Alcotest.failf "empirical cdf %.4f outside band [%.4f, %.4f] at t=%.2f" f
          b.Bounds_ssta.lower.(i) b.Bounds_ssta.upper.(i) t)
    b.Bounds_ssta.times

let test_quantile_bounds () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let r = Bounds_ssta.analyze c in
  let b = Bounds_ssta.chip_band r in
  let optimistic, pessimistic = Bounds_ssta.quantile_bounds b 0.99 in
  Alcotest.(check bool) "ordering" true (optimistic <= pessimistic);
  (* the pessimistic 99% bound cannot precede the structural depth *)
  Alcotest.(check bool) "pessimistic beyond depth" true
    (pessimistic >= float_of_int (Circuit.depth c) -. 1.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Bounds_ssta.quantile_bounds: p outside (0,1)") (fun () ->
      ignore (Bounds_ssta.quantile_bounds b 1.0))

let test_cdf_bounds_lookup () =
  let c = buffer_chain 2 in
  let r = Bounds_ssta.analyze ~dt:0.05 c in
  let b = Bounds_ssta.band r (List.hd (Circuit.primary_outputs c)) in
  let lo, hi = Bounds_ssta.cdf_bounds b 2.0 in
  close "median of shifted normal (lower)" 0.5 lo ~tol:0.03;
  close "median of shifted normal (upper)" 0.5 hi ~tol:0.03;
  let lo2, _ = Bounds_ssta.cdf_bounds b (-100.0) in
  close "far left" 0.0 lo2

let test_parallel_bit_identical () =
  (* the levelized ?domains schedule must reproduce the sequential cdf
     bands exactly, bin for bin *)
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let seq = Bounds_ssta.analyze c in
  List.iter
    (fun domains ->
      let par = Bounds_ssta.analyze ~domains c in
      let check_band name a b =
        Array.iteri
          (fun i t ->
            close (Printf.sprintf "%s time bin %d" name i) t b.Bounds_ssta.times.(i) ~tol:0.0;
            close (Printf.sprintf "%s lower bin %d" name i) a.Bounds_ssta.lower.(i)
              b.Bounds_ssta.lower.(i) ~tol:0.0;
            close (Printf.sprintf "%s upper bin %d" name i) a.Bounds_ssta.upper.(i)
              b.Bounds_ssta.upper.(i) ~tol:0.0)
          a.Bounds_ssta.times
      in
      List.iter
        (fun e -> check_band (Circuit.net_name c e) (Bounds_ssta.band seq e) (Bounds_ssta.band par e))
        (Circuit.endpoints c);
      check_band "chip" (Bounds_ssta.chip_band seq) (Bounds_ssta.chip_band par))
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "tight on chains" `Quick test_chain_bounds_tight;
    Alcotest.test_case "parallel bit-identical" `Quick test_parallel_bit_identical;
    Alcotest.test_case "lower <= upper" `Quick test_band_ordering;
    Alcotest.test_case "bounds monotone" `Quick test_bounds_monotone;
    Alcotest.test_case "MC inside the chip band" `Slow test_mc_within_chip_band;
    Alcotest.test_case "quantile bounds" `Quick test_quantile_bounds;
    Alcotest.test_case "cdf lookup" `Quick test_cdf_bounds_lookup;
  ]
