module Canonical = Spsta_variation.Canonical
module Param_model = Spsta_variation.Param_model
module Canonical_ssta = Spsta_variation.Canonical_ssta
module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Rng = Spsta_util.Rng
module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let form mean sens rand = Canonical.make ~mean ~sens ~rand

let test_moments () =
  let f = form 3.0 [| 0.3; 0.4 |] 0.5 in
  close "variance" 0.5 (Canonical.variance f);
  close "stddev" (sqrt 0.5) (Canonical.stddev f);
  Alcotest.(check int) "nparams" 2 (Canonical.nparams f)

let test_covariance () =
  let a = form 0.0 [| 1.0; 0.0 |] 0.5 in
  let b = form 0.0 [| 1.0; 0.0 |] 0.5 in
  close "shared parameter covariance" 1.0 (Canonical.covariance a b);
  let c = form 0.0 [| 0.0; 1.0 |] 0.0 in
  close "orthogonal parameters" 0.0 (Canonical.covariance a c);
  close "self correlation" 1.0 (Canonical.correlation c c)

let test_add_exact () =
  let a = form 1.0 [| 0.2; 0.0 |] 0.3 in
  let b = form 2.0 [| 0.1; 0.4 |] 0.4 in
  let s = Canonical.add a b in
  close "sum mean" 3.0 s.Canonical.mean;
  close "sum sens 0" 0.3 s.Canonical.sens.(0);
  close "sum sens 1" 0.4 s.Canonical.sens.(1);
  close "sum rand" 0.5 s.Canonical.rand;
  (* variance identity: var(a+b) = var a + var b + 2 cov *)
  close "sum variance identity"
    (Canonical.variance a +. Canonical.variance b +. (2.0 *. Canonical.covariance a b))
    (Canonical.variance s)

let test_scale_negate () =
  let a = form 2.0 [| 0.5 |] 0.25 in
  let s = Canonical.scale a (-2.0) in
  close "scaled mean" (-4.0) s.Canonical.mean;
  close "scaled variance" (4.0 *. Canonical.variance a) (Canonical.variance s);
  let n = Canonical.negate a in
  close "negated mean" (-2.0) n.Canonical.mean;
  close "negation keeps variance" (Canonical.variance a) (Canonical.variance n)

let test_max_matches_clark () =
  (* with disjoint parameters (zero covariance) canonical MAX must match
     plain Clark MAX moments *)
  let a = form 1.0 [| 0.8; 0.0 |] 0.6 in
  let b = form 1.5 [| 0.0; 0.5 |] 0.2 in
  let m = Canonical.max2 a b in
  let clark =
    Spsta_dist.Clark.max_moments
      (Spsta_dist.Normal.make ~mu:1.0 ~sigma:(Canonical.stddev a))
      (Spsta_dist.Normal.make ~mu:1.5 ~sigma:(Canonical.stddev b))
  in
  close "max mean vs Clark" clark.Spsta_dist.Clark.mean m.Canonical.mean ~tol:1e-9;
  close "max variance vs Clark" clark.Spsta_dist.Clark.variance (Canonical.variance m) ~tol:1e-9

let test_max_correlated_inputs () =
  (* identical forms: MAX is the form itself *)
  let a = form 2.0 [| 0.7 |] 0.0 in
  let m = Canonical.max2 a a in
  close "max of identical forms mean" 2.0 m.Canonical.mean;
  close "max of identical forms variance" (Canonical.variance a) (Canonical.variance m)

let test_max_dominant () =
  let late = form 50.0 [| 0.5 |] 0.5 in
  let early = form 0.0 [| 0.3 |] 0.3 in
  let m = Canonical.max2 late early in
  close "dominant mean" 50.0 m.Canonical.mean ~tol:1e-6;
  close "dominant sens" 0.5 m.Canonical.sens.(0) ~tol:1e-6

let test_min_duality () =
  let a = form 1.0 [| 0.4 |] 0.3 and b = form 2.0 [| 0.1 |] 0.6 in
  let mx = Canonical.max2 a b and mn = Canonical.min2 a b in
  close "max+min mean identity" 3.0 (mx.Canonical.mean +. mn.Canonical.mean) ~tol:1e-9

let test_max_against_sampling () =
  (* correlated inputs through a shared parameter: canonical MAX must
     track a Monte Carlo over the same parameter vector *)
  let a = form 1.0 [| 0.8; 0.2 |] 0.3 in
  let b = form 1.2 [| 0.8; -0.4 |] 0.2 in
  let m = Canonical.max2 a b in
  let rng = Rng.create ~seed:123 in
  let acc = Stats.acc_create () in
  for _ = 1 to 200_000 do
    let params = [| Rng.gaussian rng ~mu:0.0 ~sigma:1.0; Rng.gaussian rng ~mu:0.0 ~sigma:1.0 |] in
    let xa = Canonical.sample rng ~params a in
    let xb = Canonical.sample rng ~params b in
    Stats.acc_add acc (Float.max xa xb)
  done;
  close "correlated MAX mean vs MC" (Stats.acc_mean acc) m.Canonical.mean ~tol:0.01;
  close "correlated MAX stddev vs MC" (Stats.acc_stddev acc) (Canonical.stddev m) ~tol:0.01

let test_param_model_basics () =
  let m = Param_model.create ~sigma_global:0.3 ~sigma_spatial:0.4 ~sigma_random:0.5 ~grid:3 () in
  Alcotest.(check int) "params = 1 + 9" 10 (Param_model.num_params m);
  close "total sigma" (sqrt ((0.3 ** 2.) +. (0.4 ** 2.) +. (0.5 ** 2.))) (Param_model.total_sigma m);
  let var = Param_model.total_sigma m ** 2.0 in
  close "same-region correlation" (((0.3 ** 2.) +. (0.4 ** 2.)) /. var)
    (Param_model.delay_correlation m ~same_region:true);
  close "cross-region correlation" ((0.3 ** 2.) /. var)
    (Param_model.delay_correlation m ~same_region:false)

let test_param_model_validation () =
  Alcotest.check_raises "grid" (Invalid_argument "Param_model.create: grid must be positive")
    (fun () -> ignore (Param_model.create ~grid:0 ()));
  Alcotest.check_raises "sigma" (Invalid_argument "Param_model.create: negative sigma")
    (fun () -> ignore (Param_model.create ~sigma_global:(-0.1) ~grid:2 ()))

let test_gate_delay_canonical () =
  let model = Param_model.create ~sigma_global:0.2 ~sigma_spatial:0.3 ~sigma_random:0.1 ~grid:2 () in
  let c = Spsta_experiments.Benchmarks.s27 () in
  let p = Param_model.place ~seed:1 model c in
  let g = (Circuit.topo_gates c).(0) in
  let d = Param_model.gate_delay_canonical model p g in
  close "delay mean" 1.0 d.Canonical.mean;
  close "delay sigma" (Param_model.total_sigma model) (Canonical.stddev d) ~tol:1e-12;
  (* same-region gates correlate as predicted *)
  let h =
    (* find another gate in the same region, if any *)
    Array.to_list (Circuit.topo_gates c)
    |> List.find_opt (fun x -> x <> g && Param_model.region p x = Param_model.region p g)
  in
  match h with
  | Some h ->
    let dh = Param_model.gate_delay_canonical model p h in
    close "same-region correlation" (Param_model.delay_correlation model ~same_region:true)
      (Canonical.correlation d dh) ~tol:1e-12
  | None -> ()

let buffer_chain n =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  let prev = ref "a" in
  for i = 1 to n do
    let name = Printf.sprintf "n%d" i in
    Circuit.Builder.add_gate b ~output:name Gate_kind.Buf [ !prev ];
    prev := name
  done;
  Circuit.Builder.add_output b !prev;
  Circuit.Builder.finalize b

let test_canonical_ssta_chain () =
  (* pure global variation: delays are perfectly correlated, so the
     4-buffer chain sigma is 4 * sigma_global (not sqrt(4)) *)
  let model = Param_model.create ~sigma_global:0.2 ~grid:2 () in
  let c = buffer_chain 4 in
  let p = Param_model.place ~seed:2 model c in
  let r = Canonical_ssta.analyze ~input_sigma:0.0 model p c in
  let out = List.hd (Circuit.primary_outputs c) in
  let a = Canonical_ssta.arrival r out in
  close "chain mean" 4.0 a.Canonical_ssta.rise.Canonical.mean;
  close "correlated chain sigma" 0.8 (Canonical.stddev a.Canonical_ssta.rise) ~tol:1e-9;
  (* independent-only variation gives the sqrt law instead *)
  let model_r = Param_model.create ~sigma_random:0.2 ~grid:2 () in
  let r2 = Canonical_ssta.analyze ~input_sigma:0.0 model_r (Param_model.place model_r c) c in
  let a2 = Canonical_ssta.arrival r2 out in
  close "independent chain sigma" (0.2 *. 2.0) (Canonical.stddev a2.Canonical_ssta.rise) ~tol:1e-9

(* a balanced AND tree over 8 always-rising inputs: every net rises each
   cycle with arrival = MAX over its inputs, which is exactly what the
   min/max-separated analysis computes — residual error is Clark only *)
let and_tree () =
  let b = Circuit.Builder.create () in
  let leaves = List.init 8 (fun i -> Printf.sprintf "i%d" i) in
  List.iter (Circuit.Builder.add_input b) leaves;
  let counter = ref 0 in
  let rec reduce = function
    | [ last ] -> last
    | nets ->
      let rec pair = function
        | x :: y :: rest ->
          incr counter;
          let name = Printf.sprintf "t%d" !counter in
          Circuit.Builder.add_gate b ~output:name Gate_kind.And [ x; y ];
          name :: pair rest
        | [ x ] -> [ x ]
        | [] -> []
      in
      reduce (pair nets)
  in
  let root = reduce leaves in
  Circuit.Builder.add_output b root;
  Circuit.Builder.finalize b

let test_canonical_ssta_vs_sampling () =
  let model = Param_model.create ~sigma_global:0.15 ~sigma_spatial:0.1 ~sigma_random:0.1 ~grid:2 () in
  let c = and_tree () in
  let p = Param_model.place ~seed:3 model c in
  let r = Canonical_ssta.analyze ~input_sigma:0.0 model p c in
  let rng = Rng.create ~seed:31 in
  let target = List.hd (Circuit.primary_outputs c) in
  let acc = Stats.acc_create () in
  for _ = 1 to 20_000 do
    let delay_of = Param_model.sample_delays rng model p c in
    let sim =
      Spsta_sim.Logic_sim.run ~delay_of c
        ~source_values:(fun _ -> (Spsta_logic.Value4.Rising, 0.0))
    in
    Stats.acc_add acc sim.Spsta_sim.Logic_sim.times.(target)
  done;
  let a = Canonical_ssta.arrival r target in
  let form = a.Canonical_ssta.rise in
  close "canonical SSTA mean vs sampled MC" (Stats.acc_mean acc) form.Canonical.mean ~tol:0.03;
  close "canonical SSTA sigma vs sampled MC" (Stats.acc_stddev acc) (Canonical.stddev form)
    ~tol:0.03

let test_endpoint_correlation () =
  let model = Param_model.create ~sigma_global:0.3 ~grid:2 () in
  let c = Spsta_experiments.Benchmarks.load "s298" in
  let p = Param_model.place ~seed:4 model c in
  let r = Canonical_ssta.analyze ~input_sigma:0.0 model p c in
  match Circuit.endpoints c with
  | e1 :: e2 :: _ ->
    (* pure global variation makes deep endpoints strongly correlated *)
    Alcotest.(check bool) "global variation correlates endpoints" true
      (Canonical_ssta.endpoint_correlation r `Rise e1 e2 > 0.5)
  | _ -> Alcotest.fail "expected at least two endpoints"

let test_chip_delay_dominates () =
  let model = Param_model.create ~sigma_random:0.1 ~grid:2 () in
  let c = Spsta_experiments.Benchmarks.s27 () in
  let p = Param_model.place model c in
  let r = Canonical_ssta.analyze model p c in
  let chip = Canonical_ssta.chip_delay r in
  List.iter
    (fun e ->
      let a = Canonical_ssta.arrival r e in
      Alcotest.(check bool) "chip delay >= endpoint means" true
        (chip.Canonical.mean >= a.Canonical_ssta.rise.Canonical.mean -. 1e-9
        && chip.Canonical.mean >= a.Canonical_ssta.fall.Canonical.mean -. 1e-9))
    (Circuit.endpoints c)

let test_canonical_parallel_bit_identical () =
  (* canonical forms carry a full sensitivity vector; the ?domains
     schedule must reproduce every coefficient exactly *)
  let model =
    Param_model.create ~sigma_global:0.2 ~sigma_spatial:0.15 ~sigma_random:0.1 ~grid:3 ()
  in
  let c = Spsta_experiments.Benchmarks.load "s298" in
  let p = Param_model.place ~seed:9 model c in
  let seq = Canonical_ssta.analyze model p c in
  let check_form name a b =
    close (name ^ " mean") a.Canonical.mean b.Canonical.mean ~tol:0.0;
    close (name ^ " rand") a.Canonical.rand b.Canonical.rand ~tol:0.0;
    Alcotest.(check int) (name ^ " nparams") (Canonical.nparams a) (Canonical.nparams b);
    Array.iteri
      (fun i s -> close (Printf.sprintf "%s sens %d" name i) s b.Canonical.sens.(i) ~tol:0.0)
      a.Canonical.sens
  in
  List.iter
    (fun domains ->
      let par = Canonical_ssta.analyze ~domains model p c in
      for i = 0 to Circuit.num_nets c - 1 do
        let a = Canonical_ssta.arrival seq i and b = Canonical_ssta.arrival par i in
        let name = Printf.sprintf "%s@%d" (Circuit.net_name c i) domains in
        check_form (name ^ " rise") a.Canonical_ssta.rise b.Canonical_ssta.rise;
        check_form (name ^ " fall") a.Canonical_ssta.fall b.Canonical_ssta.fall
      done;
      check_form "chip delay" (Canonical_ssta.chip_delay seq) (Canonical_ssta.chip_delay par))
    [ 1; 2; 4 ]

let suite =
  [
    Alcotest.test_case "moments" `Quick test_moments;
    Alcotest.test_case "canonical SSTA parallel bit-identical" `Quick
      test_canonical_parallel_bit_identical;
    Alcotest.test_case "covariance" `Quick test_covariance;
    Alcotest.test_case "add is exact" `Quick test_add_exact;
    Alcotest.test_case "scale/negate" `Quick test_scale_negate;
    Alcotest.test_case "max = Clark when independent" `Quick test_max_matches_clark;
    Alcotest.test_case "max of identical forms" `Quick test_max_correlated_inputs;
    Alcotest.test_case "max dominant input" `Quick test_max_dominant;
    Alcotest.test_case "min/max duality" `Quick test_min_duality;
    Alcotest.test_case "correlated max vs sampling" `Slow test_max_against_sampling;
    Alcotest.test_case "param model basics" `Quick test_param_model_basics;
    Alcotest.test_case "param model validation" `Quick test_param_model_validation;
    Alcotest.test_case "gate delay canonical" `Quick test_gate_delay_canonical;
    Alcotest.test_case "canonical SSTA chain laws" `Quick test_canonical_ssta_chain;
    Alcotest.test_case "canonical SSTA vs sampled MC" `Slow test_canonical_ssta_vs_sampling;
    Alcotest.test_case "endpoint correlation" `Quick test_endpoint_correlation;
    Alcotest.test_case "chip delay dominates" `Quick test_chip_delay_dominates;
  ]
