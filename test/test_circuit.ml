module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind

let build_small () =
  (* a -> inv -> n1; (n1, b) -> and -> n2 (PO); n2 -> dff q (q feeds inv2 -> n3 PO) *)
  let b = Circuit.Builder.create ~name:"small" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.And [ "n1"; "b" ];
  Circuit.Builder.add_output b "n2";
  Circuit.Builder.add_dff b ~q:"q" ~d:"n2";
  Circuit.Builder.add_gate b ~output:"n3" Gate_kind.Not [ "q" ];
  Circuit.Builder.add_output b "n3";
  Circuit.Builder.finalize b

let test_basic_structure () =
  let c = build_small () in
  Alcotest.(check int) "nets" 6 (Circuit.num_nets c);
  Alcotest.(check int) "gates" 3 (Circuit.gate_count c);
  Alcotest.(check int) "inputs" 2 (List.length (Circuit.primary_inputs c));
  Alcotest.(check int) "outputs" 2 (List.length (Circuit.primary_outputs c));
  Alcotest.(check int) "dffs" 1 (List.length (Circuit.dffs c));
  Alcotest.(check int) "sources = PI + FF" 3 (List.length (Circuit.sources c));
  Alcotest.(check string) "name" "small" (Circuit.name c)

let test_levels_and_depth () =
  let c = build_small () in
  let level name = Circuit.level c (Circuit.find_exn c name) in
  Alcotest.(check int) "source level" 0 (level "a");
  Alcotest.(check int) "ff output level" 0 (level "q");
  Alcotest.(check int) "inv level" 1 (level "n1");
  Alcotest.(check int) "and level" 2 (level "n2");
  Alcotest.(check int) "depth" 2 (Circuit.depth c)

let test_topo_order () =
  let c = build_small () in
  let position = Hashtbl.create 8 in
  Array.iteri (fun i g -> Hashtbl.replace position g i) (Circuit.topo_gates c);
  Array.iter
    (fun g ->
      match Circuit.driver c g with
      | Circuit.Gate { inputs; _ } ->
        Array.iter
          (fun i ->
            match Hashtbl.find_opt position i with
            | Some pi -> Alcotest.(check bool) "inputs precede gate" true (pi < Hashtbl.find position g)
            | None -> () (* a source *))
          inputs
      | Circuit.Input | Circuit.Dff_output _ -> Alcotest.fail "topo_gates must be gates")
    (Circuit.topo_gates c)

let test_gates_by_level () =
  let check_circuit c =
    let groups = Circuit.gates_by_level c in
    (* every gate exactly once *)
    let flat = Array.concat (Array.to_list groups) in
    Alcotest.(check int) "covers every gate" (Array.length (Circuit.topo_gates c))
      (Array.length flat);
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun g ->
        Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen g);
        Hashtbl.replace seen g ())
      flat;
    (* uniform level within a group, strictly ascending across groups,
       and no gate's input is driven in its own or a later group *)
    let last_level = ref (-1) in
    Array.iter
      (fun gates ->
        Alcotest.(check bool) "no empty groups" true (Array.length gates > 0);
        let lvl = Circuit.level c gates.(0) in
        Alcotest.(check bool) "levels ascend" true (lvl > !last_level);
        last_level := lvl;
        Array.iter
          (fun g ->
            Alcotest.(check int) "uniform level in group" lvl (Circuit.level c g);
            match Circuit.driver c g with
            | Circuit.Gate { inputs; _ } ->
              Array.iter
                (fun i ->
                  Alcotest.(check bool) "operands from earlier levels" true
                    (Circuit.level c i < lvl))
                inputs
            | Circuit.Input | Circuit.Dff_output _ -> Alcotest.fail "groups hold gates only")
          gates)
      groups
  in
  check_circuit (build_small ());
  check_circuit (Spsta_experiments.Benchmarks.load "s386")

let test_fanout () =
  let c = build_small () in
  let n2 = Circuit.find_exn c "n2" in
  let q = Circuit.find_exn c "q" in
  Alcotest.(check bool) "n2 drives the flip-flop" true (Array.mem q (Circuit.fanout c n2))

let test_endpoints_dedup () =
  (* n2 is both a PO and a DFF data input: endpoints must list it once *)
  let c = build_small () in
  let n2 = Circuit.find_exn c "n2" in
  let count = List.length (List.filter (fun e -> e = n2) (Circuit.endpoints c)) in
  Alcotest.(check int) "n2 appears once" 1 count

let test_find () =
  let c = build_small () in
  Alcotest.(check bool) "missing net" true (Circuit.find c "nope" = None);
  (* the error must name both the missing net and the circuit *)
  Alcotest.check_raises "find_exn missing"
    (Invalid_argument "Circuit.find_exn: no net \"nope\" in circuit \"small\"") (fun () ->
      ignore (Circuit.find_exn c "nope"))

let expect_invalid f =
  match f () with
  | (_ : Circuit.t) -> Alcotest.fail "expected Invalid_circuit"
  | exception Circuit.Invalid_circuit _ -> ()

let test_undriven_net () =
  expect_invalid (fun () ->
      let b = Circuit.Builder.create () in
      Circuit.Builder.add_input b "a";
      Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "ghost" ];
      Circuit.Builder.add_output b "y";
      Circuit.Builder.finalize b)

let test_duplicate_driver () =
  expect_invalid (fun () ->
      let b = Circuit.Builder.create () in
      Circuit.Builder.add_input b "a";
      Circuit.Builder.add_gate b ~output:"a" Gate_kind.Not [ "a" ];
      Circuit.Builder.finalize b)

let test_combinational_cycle () =
  expect_invalid (fun () ->
      let b = Circuit.Builder.create () in
      Circuit.Builder.add_input b "a";
      Circuit.Builder.add_gate b ~output:"x" Gate_kind.And [ "a"; "y" ];
      Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "x" ];
      Circuit.Builder.add_output b "y";
      Circuit.Builder.finalize b)

let test_cycle_names_nets () =
  (* the error must name exactly the nets on the cycle — not the
     downstream nets that are merely starved by it *)
  let message =
    try
      let b = Circuit.Builder.create () in
      Circuit.Builder.add_input b "a";
      Circuit.Builder.add_gate b ~output:"x" Gate_kind.And [ "a"; "y" ];
      Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "x" ];
      Circuit.Builder.add_gate b ~output:"z" Gate_kind.Not [ "y" ];
      Circuit.Builder.add_output b "z";
      ignore (Circuit.Builder.finalize b);
      Alcotest.fail "cycle accepted"
    with Circuit.Invalid_circuit m -> m
  in
  let contains sub =
    let n = String.length sub and len = String.length message in
    let rec go i = i + n <= len && (String.sub message i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names x" true (contains "x");
  Alcotest.(check bool) "names y" true (contains "y");
  Alcotest.(check bool) "does not name downstream z" false (contains "z")

let test_dff_breaks_cycle () =
  (* the same loop through a flip-flop is fine (sequential feedback) *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"x" Gate_kind.And [ "a"; "q" ];
  Circuit.Builder.add_dff b ~q:"q" ~d:"x";
  Circuit.Builder.add_output b "x";
  let c = Circuit.Builder.finalize b in
  Alcotest.(check int) "one gate" 1 (Circuit.gate_count c)

let test_arity_validation () =
  expect_invalid (fun () ->
      let b = Circuit.Builder.create () in
      Circuit.Builder.add_input b "a";
      Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a" ];
      Circuit.Builder.finalize b)

let test_undriven_output () =
  expect_invalid (fun () ->
      let b = Circuit.Builder.create () in
      Circuit.Builder.add_input b "a";
      Circuit.Builder.add_output b "nothing";
      Circuit.Builder.finalize b)

let test_count_gates_of_kind () =
  let c = build_small () in
  Alcotest.(check int) "NOT gates" 2 (Circuit.count_gates_of_kind c Gate_kind.Not);
  Alcotest.(check int) "AND gates" 1 (Circuit.count_gates_of_kind c Gate_kind.And);
  Alcotest.(check int) "XOR gates" 0 (Circuit.count_gates_of_kind c Gate_kind.Xor)

let suite =
  [
    Alcotest.test_case "basic structure" `Quick test_basic_structure;
    Alcotest.test_case "levels and depth" `Quick test_levels_and_depth;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "gates by level" `Quick test_gates_by_level;
    Alcotest.test_case "fanout" `Quick test_fanout;
    Alcotest.test_case "endpoint dedup" `Quick test_endpoints_dedup;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "undriven net rejected" `Quick test_undriven_net;
    Alcotest.test_case "duplicate driver rejected" `Quick test_duplicate_driver;
    Alcotest.test_case "combinational cycle rejected" `Quick test_combinational_cycle;
    Alcotest.test_case "cycle error names the cycle nets" `Quick test_cycle_names_nets;
    Alcotest.test_case "dff breaks cycles" `Quick test_dff_breaks_cycle;
    Alcotest.test_case "gate arity validated" `Quick test_arity_validation;
    Alcotest.test_case "undriven output rejected" `Quick test_undriven_output;
    Alcotest.test_case "count gates of kind" `Quick test_count_gates_of_kind;
  ]
