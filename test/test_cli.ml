(* The unknown-subcommand hint must enumerate every subcommand — it is
   generated from the cmdliner command list itself (one source of
   truth), so this test catches a regression to a hand-maintained
   hint, or a help wiring that drops a command. *)

(* resolved relative to the test binary, not the cwd, so both
   `dune runtest` and `dune exec test/test_main.exe` find it *)
let cli = Filename.concat (Filename.dirname Sys.executable_name) "../bin/spsta_cli.exe"

let run_capture cmd =
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  Buffer.contents buf

let expected =
  [ "analyze"; "lint"; "check"; "ssta"; "mc"; "power"; "exact-prob"; "paths"; "sequential";
    "chip-delay"; "variation"; "report"; "criticality"; "static"; "size"; "waveform"; "export";
    "gen"; "experiment"; "list"; "serve"; "batch"; "session" ]

let test_unknown_subcommand_hint () =
  let out = run_capture (Filename.quote cli ^ " no-such-subcommand 2>&1") in
  Alcotest.(check bool) "names the bad subcommand" true
    (let re = "unknown subcommand no-such-subcommand" in
     let len = String.length re in
     let rec find i = i + len <= String.length out && (String.sub out i len = re || find (i + 1)) in
     find 0);
  let hint_line =
    match
      List.find_opt
        (fun l -> String.length l > 22 && String.sub l 0 22 = "available subcommands:")
        (String.split_on_char '\n' out)
    with
    | Some l -> l
    | None -> Alcotest.failf "no suggestion line in output:\n%s" out
  in
  let listed =
    String.sub hint_line 22 (String.length hint_line - 22)
    |> String.split_on_char ',' |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "hint lists %s" name) true (List.mem name listed))
    expected;
  Alcotest.(check int) "and nothing else" (List.length expected) (List.length listed);
  Alcotest.(check int) "no duplicates" (List.length listed)
    (List.length (List.sort_uniq compare listed))

let suite =
  [ Alcotest.test_case "unknown subcommand hint enumerates all" `Quick
      test_unknown_subcommand_hint ]
