module Normal = Spsta_dist.Normal
module Discrete = Spsta_dist.Discrete
module Rng = Spsta_util.Rng
module Stats = Spsta_util.Stats

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let dt = 0.02

let test_zero () =
  let z = Discrete.zero ~dt in
  close "zero total" 0.0 (Discrete.total z);
  close "zero mean" 0.0 (Discrete.mean z)

let test_of_normal_moments () =
  let d = Discrete.of_normal ~dt ~mass:1.0 (Normal.make ~mu:3.0 ~sigma:1.2) in
  close "mass" 1.0 (Discrete.total d) ~tol:1e-9;
  close "mean" 3.0 (Discrete.mean d) ~tol:1e-3;
  close "stddev" 1.2 (Discrete.stddev d) ~tol:1e-3

let test_of_normal_scaled_mass () =
  let d = Discrete.of_normal ~dt ~mass:0.35 Normal.standard in
  close "scaled mass" 0.35 (Discrete.total d) ~tol:1e-9

let test_of_normal_degenerate () =
  let d = Discrete.of_normal ~dt ~mass:0.5 (Normal.make ~mu:2.0 ~sigma:0.0) in
  close "point mass total" 0.5 (Discrete.total d);
  close "point mass mean" 2.0 (Discrete.mean d) ~tol:dt

let test_of_points () =
  let d = Discrete.of_points ~dt [ (1.0, 0.2); (2.0, 0.3); (1.0, 0.1) ] in
  close "points total" 0.6 (Discrete.total d) ~tol:1e-12;
  close "points mean" ((0.3 *. 1.0) +. (0.3 *. 2.0)) (Discrete.mean d *. 0.6) ~tol:1e-9

let test_shift () =
  let d = Discrete.of_normal ~dt ~mass:1.0 Normal.standard in
  let s = Discrete.shift d 5.0 in
  close "shift mean" (Discrete.mean d +. 5.0) (Discrete.mean s) ~tol:1e-9;
  close "shift keeps variance" (Discrete.variance d) (Discrete.variance s) ~tol:1e-12

let test_add () =
  let a = Discrete.of_points ~dt [ (0.0, 0.5) ] in
  let b = Discrete.of_points ~dt [ (1.0, 0.5) ] in
  let s = Discrete.add a b in
  close "add total" 1.0 (Discrete.total s);
  close "add mean" 0.5 (Discrete.mean s) ~tol:1e-9

let test_grid_mismatch () =
  let a = Discrete.of_points ~dt:0.1 [ (0.0, 1.0) ] in
  let b = Discrete.of_points ~dt:0.2 [ (0.0, 1.0) ] in
  Alcotest.check_raises "dt mismatch" (Invalid_argument "Discrete: grid step mismatch")
    (fun () -> ignore (Discrete.add a b))

let test_convolve () =
  let a = Discrete.of_normal ~dt ~mass:1.0 (Normal.make ~mu:1.0 ~sigma:0.6) in
  let b = Discrete.of_normal ~dt ~mass:1.0 (Normal.make ~mu:2.0 ~sigma:0.8) in
  let c = Discrete.convolve a b in
  close "convolution mass" 1.0 (Discrete.total c) ~tol:1e-6;
  close "convolution mean" 3.0 (Discrete.mean c) ~tol:1e-3;
  close "convolution stddev" 1.0 (Discrete.stddev c) ~tol:1e-3

let test_max_independent_vs_clark () =
  let a = Normal.make ~mu:0.0 ~sigma:1.0 and b = Normal.make ~mu:0.5 ~sigma:1.5 in
  let da = Discrete.of_normal ~dt ~mass:1.0 a and db = Discrete.of_normal ~dt ~mass:1.0 b in
  let m = Discrete.max_independent da db in
  let clark = Spsta_dist.Clark.max_moments a b in
  close "lattice max mass" 1.0 (Discrete.total m) ~tol:1e-9;
  close "lattice max mean vs Clark" clark.Spsta_dist.Clark.mean (Discrete.mean m) ~tol:0.01;
  close "lattice max variance vs Clark" clark.Spsta_dist.Clark.variance (Discrete.variance m)
    ~tol:0.02

let test_min_independent_vs_sampling () =
  let a = Normal.make ~mu:1.0 ~sigma:1.0 and b = Normal.make ~mu:1.5 ~sigma:0.5 in
  let da = Discrete.of_normal ~dt ~mass:1.0 a and db = Discrete.of_normal ~dt ~mass:1.0 b in
  let m = Discrete.min_independent da db in
  let rng = Rng.create ~seed:33 in
  let acc = Stats.acc_create () in
  for _ = 1 to 100_000 do
    Stats.acc_add acc (Float.min (Normal.sample rng a) (Normal.sample rng b))
  done;
  close "lattice min mean vs MC" (Stats.acc_mean acc) (Discrete.mean m) ~tol:0.02;
  close "lattice min stddev vs MC" (Stats.acc_stddev acc) (Discrete.stddev m) ~tol:0.02

let test_max_idempotent_point () =
  let p = Discrete.of_points ~dt [ (1.0, 1.0) ] in
  let m = Discrete.max_independent p p in
  close "max of identical points mean" 1.0 (Discrete.mean m) ~tol:1e-9;
  close "max of identical points variance" 0.0 (Discrete.variance m) ~tol:1e-12

let test_max_ordering () =
  (* max of point masses at 1 and 2 is surely 2 *)
  let a = Discrete.of_points ~dt [ (1.0, 1.0) ] in
  let b = Discrete.of_points ~dt [ (2.0, 1.0) ] in
  let m = Discrete.max_independent a b in
  close "max point mean" 2.0 (Discrete.mean m) ~tol:1e-9;
  let mn = Discrete.min_independent a b in
  close "min point mean" 1.0 (Discrete.mean mn) ~tol:1e-9

let test_cdf_quantile () =
  let d = Discrete.of_points ~dt [ (0.0, 0.25); (1.0, 0.25); (2.0, 0.5) ] in
  close "cdf mid" 0.5 (Discrete.cdf d 1.0) ~tol:1e-12;
  close "cdf end" 1.0 (Discrete.cdf d 5.0) ~tol:1e-12;
  close "quantile 0.5" 1.0 (Discrete.quantile d 0.5) ~tol:1e-9;
  close "quantile 1.0" 2.0 (Discrete.quantile d 1.0) ~tol:1e-9

(* regression: the cdf used an absolute 1e-12 time tolerance for "at or
   before", which broke for grid times large relative to dt — a bin at
   t = 4096.0 with dt = 1/1024 sits within one ulp of its neighbours'
   threshold.  The comparison is now made in bin space, relative to dt. *)
let test_cdf_far_from_origin () =
  let dt = 1.0 /. 1024.0 in
  let t0 = 4096.0 in
  let d = Discrete.of_points ~dt [ (t0, 0.5); (t0 +. dt, 0.5) ] in
  close "cdf exactly at first bin" 0.5 (Discrete.cdf d t0) ~tol:1e-12;
  close "cdf just below first bin" 0.0 (Discrete.cdf d (t0 -. dt)) ~tol:1e-12;
  close "cdf at second bin" 1.0 (Discrete.cdf d (t0 +. dt)) ~tol:1e-12

let test_quantile_full_mass () =
  (* p = 1.0 must reach the last support bin even when the prefix sums
     round below the total; sub-unit-mass distributions normalise *)
  let d = Discrete.of_points ~dt [ (0.0, 0.1); (1.0, 0.1); (2.0, 0.1) ] in
  close "quantile 1.0 on sub-unit mass" 2.0 (Discrete.quantile d 1.0) ~tol:1e-9;
  let fine = Discrete.of_normal ~dt:0.005 ~mass:1.0 Normal.standard in
  let q1 = Discrete.quantile fine 1.0 in
  close "quantile 1.0 is reached by the cdf" (Discrete.total fine) (Discrete.cdf fine q1)
    ~tol:1e-9;
  Alcotest.check_raises "p above 1" (Invalid_argument "Discrete.quantile: p outside (0,1]")
    (fun () -> ignore (Discrete.quantile d 1.5))

let test_truncate () =
  let d = Discrete.of_normal ~dt ~mass:1.0 Normal.standard in
  let t = Discrete.truncate ~eps:1e-4 d in
  Alcotest.(check bool) "support shrinks" true
    (List.length (Discrete.series t) < List.length (Discrete.series d));
  let removed = Discrete.total d -. Discrete.total t in
  Alcotest.(check bool) "per-side bound" true (removed <= 2e-4);
  close "dropped mass tracks removal" removed (Discrete.dropped_mass t) ~tol:1e-15;
  close "moments survive truncation" (Discrete.mean d) (Discrete.mean t) ~tol:1e-3;
  (* dropped mass rides through downstream arithmetic *)
  let s = Discrete.add (Discrete.shift t 1.0) (Discrete.scale t 0.5) in
  Alcotest.(check bool) "dropped mass propagates" true
    (Discrete.dropped_mass s >= Discrete.dropped_mass t);
  close "eps 0 is the identity" 0.0 (Discrete.dropped_mass (Discrete.truncate ~eps:0.0 d))
    ~tol:0.0

let test_of_normal_cache_identical () =
  let n = Normal.make ~mu:1.73 ~sigma:0.41 in
  let cached = Discrete.of_normal ~cache:true ~dt ~mass:0.6 n in
  let direct = Discrete.of_normal ~cache:false ~dt ~mass:0.6 n in
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "cached discretisation bit-identical" (Discrete.series direct) (Discrete.series cached)

let test_accum_matches_add_fold () =
  let parts =
    [ Discrete.of_normal ~dt ~mass:0.3 (Normal.make ~mu:0.0 ~sigma:0.5);
      Discrete.of_points ~dt [ (2.0, 0.2) ];
      Discrete.of_normal ~dt ~mass:0.1 (Normal.make ~mu:(-3.0) ~sigma:0.2);
      Discrete.zero ~dt;
      Discrete.of_normal ~dt ~mass:0.4 (Normal.make ~mu:5.0 ~sigma:1.0) ]
  in
  let folded = List.fold_left Discrete.add (Discrete.zero ~dt) parts in
  let acc = Discrete.Accum.create ~dt in
  List.iter (Discrete.Accum.add acc) parts;
  close "accum running total" (Discrete.total folded) (Discrete.Accum.total acc) ~tol:0.0;
  Alcotest.(check (list (pair (float 0.0) (float 0.0))))
    "accumulator bit-identical to add fold" (Discrete.series folded)
    (Discrete.series (Discrete.Accum.to_dist acc))

let test_scale_invalid () =
  let d = Discrete.of_points ~dt [ (0.0, 1.0) ] in
  Alcotest.check_raises "negative scale" (Invalid_argument "Discrete.scale: negative factor")
    (fun () -> ignore (Discrete.scale d (-1.0)))

let max_mass_preserved =
  QCheck.Test.make ~name:"max_independent returns unit mass" ~count:100
    QCheck.(quad (float_range (-3.) 3.) (float_range 0.1 2.) (float_range (-3.) 3.) (float_range 0.1 2.))
    (fun (m1, s1, m2, s2) ->
      let a = Discrete.of_normal ~dt:0.05 ~mass:0.7 (Normal.make ~mu:m1 ~sigma:s1) in
      let b = Discrete.of_normal ~dt:0.05 ~mass:0.2 (Normal.make ~mu:m2 ~sigma:s2) in
      Float.abs (Discrete.total (Discrete.max_independent a b) -. 1.0) < 1e-6)

let max_dominates_means =
  QCheck.Test.make ~name:"lattice E[max] >= input means" ~count:100
    QCheck.(quad (float_range (-3.) 3.) (float_range 0.1 2.) (float_range (-3.) 3.) (float_range 0.1 2.))
    (fun (m1, s1, m2, s2) ->
      let a = Discrete.of_normal ~dt:0.05 ~mass:1.0 (Normal.make ~mu:m1 ~sigma:s1) in
      let b = Discrete.of_normal ~dt:0.05 ~mass:1.0 (Normal.make ~mu:m2 ~sigma:s2) in
      let mean = Discrete.mean (Discrete.max_independent a b) in
      mean >= Discrete.mean a -. 0.01 && mean >= Discrete.mean b -. 0.01)

let suite =
  [
    Alcotest.test_case "zero" `Quick test_zero;
    Alcotest.test_case "of_normal moments" `Quick test_of_normal_moments;
    Alcotest.test_case "of_normal scaled mass" `Quick test_of_normal_scaled_mass;
    Alcotest.test_case "of_normal degenerate" `Quick test_of_normal_degenerate;
    Alcotest.test_case "of_points" `Quick test_of_points;
    Alcotest.test_case "shift" `Quick test_shift;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "grid mismatch" `Quick test_grid_mismatch;
    Alcotest.test_case "convolve" `Quick test_convolve;
    Alcotest.test_case "max vs Clark" `Quick test_max_independent_vs_clark;
    Alcotest.test_case "min vs sampling" `Quick test_min_independent_vs_sampling;
    Alcotest.test_case "max of identical points" `Quick test_max_idempotent_point;
    Alcotest.test_case "max/min ordering" `Quick test_max_ordering;
    Alcotest.test_case "cdf and quantile" `Quick test_cdf_quantile;
    Alcotest.test_case "cdf far from origin" `Quick test_cdf_far_from_origin;
    Alcotest.test_case "quantile at full mass" `Quick test_quantile_full_mass;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "of_normal cache" `Quick test_of_normal_cache_identical;
    Alcotest.test_case "accum matches add fold" `Quick test_accum_matches_add_fold;
    Alcotest.test_case "scale validation" `Quick test_scale_invalid;
    QCheck_alcotest.to_alcotest max_mass_preserved;
    QCheck_alcotest.to_alcotest max_dominates_means;
  ]
