(* The shared propagation engine, tested directly through a toy domain:
   state = unit-delay level, so the engine's answer is checkable against
   Circuit.level at every net.  Also covers the instrumentation hook and
   the dirty-cone work bound of update. *)

module Circuit = Spsta_netlist.Circuit
module Propagate = Spsta_engine.Propagate

(* levels as a propagation domain: source -> 0, gate -> 1 + max inputs *)
module Levels = Propagate.Make (struct
  type state = int

  let source _ = 0

  let eval _circuit _id _driver operands =
    1 + Array.fold_left max 0 operands
end)

let test_levels_domain () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  List.iter
    (fun domains ->
      let r = Levels.run ~domains c in
      for i = 0 to Circuit.num_nets c - 1 do
        Alcotest.(check int)
          (Printf.sprintf "level of %s at domains=%d" (Circuit.net_name c i) domains)
          (Circuit.level c i) r.Propagate.per_net.(i)
      done)
    [ 1; 2; 4 ]

let test_domains_validated () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  Alcotest.check_raises "domains = 0" (Invalid_argument "Parallel: domains must be positive")
    (fun () -> ignore (Levels.run ~domains:0 c))

let test_instrument_hook () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let stats = ref [] in
  let r = Levels.run ~instrument:(fun s -> stats := s :: !stats) c in
  let stats = List.rev !stats in
  Alcotest.(check bool) "at least one level" true (stats <> []);
  (* levels strictly ascend, every count positive, timings non-negative *)
  let last = ref (-1) in
  List.iter
    (fun s ->
      Alcotest.(check bool) "levels ascend" true (s.Propagate.level > !last);
      last := s.Propagate.level;
      Alcotest.(check bool) "positive gate count" true (s.Propagate.gates > 0);
      Alcotest.(check bool) "non-negative time" true (s.Propagate.elapsed_s >= 0.0))
    stats;
  (* the per-level counts cover every gate exactly once *)
  Alcotest.(check int) "gate counts sum to gate_count" (Circuit.gate_count c)
    (List.fold_left (fun acc s -> acc + s.Propagate.gates) 0 stats);
  (* forcing the levelized traversal (instrument at domains=1) must not
     change any value *)
  let plain = Levels.run c in
  Alcotest.(check (array int)) "instrumented run identical" plain.Propagate.per_net
    r.Propagate.per_net

let test_update_touches_only_the_cone () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  (* a counting domain: same states as Levels, but tallies evals *)
  let evals = ref 0 in
  let module Counting = Propagate.Make (struct
    type state = int

    let source _ = 0

    let eval _circuit _id _driver operands =
      incr evals;
      1 + Array.fold_left max 0 operands
  end) in
  let base = Counting.run c in
  Alcotest.(check int) "full run evaluates every gate" (Circuit.gate_count c) !evals;
  let changed = List.hd (Circuit.primary_inputs c) in
  (* expected dirty-gate count from independent fanout marking; like the
     engine, marking stops at register boundaries — a flip-flop Q net
     re-seeds from [source], not from the D arrival *)
  let dirty = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem dirty id) then begin
      Hashtbl.replace dirty id ();
      Array.iter
        (fun out ->
          match Circuit.driver c out with
          | Circuit.Dff_output _ -> ()
          | Circuit.Gate _ | Circuit.Input -> mark out)
        (Circuit.fanout c id)
    end
  in
  mark changed;
  let dirty_gates =
    Array.to_list (Circuit.topo_gates c) |> List.filter (Hashtbl.mem dirty) |> List.length
  in
  Alcotest.(check bool) "cone is a strict subset" true (dirty_gates < Circuit.gate_count c);
  evals := 0;
  let updated = Counting.update base ~changed:[ changed ] in
  Alcotest.(check int) "update evaluates only the cone" dirty_gates !evals;
  Alcotest.(check (array int)) "update preserves values" base.Propagate.per_net
    updated.Propagate.per_net

(* A circuit shaped to exercise both scheduler paths at once: one wide
   level (well above the pool cutoff) followed by a deep chain of
   single-gate levels (fused into one sequential batch). *)
let wide_then_narrow () =
  let b = Circuit.Builder.create ~name:"wide-narrow" () in
  let n_in = 8 and wide = 300 and chain = 40 in
  for i = 0 to n_in - 1 do
    Circuit.Builder.add_input b (Printf.sprintf "i%d" i)
  done;
  for g = 0 to wide - 1 do
    Circuit.Builder.add_gate b
      ~output:(Printf.sprintf "w%d" g)
      Spsta_logic.Gate_kind.And
      [ Printf.sprintf "i%d" (g mod n_in); Printf.sprintf "i%d" ((g + 1) mod n_in) ]
  done;
  let prev = ref "w0" in
  for k = 0 to chain - 1 do
    let out = Printf.sprintf "c%d" k in
    Circuit.Builder.add_gate b ~output:out Spsta_logic.Gate_kind.Buf [ !prev ];
    prev := out
  done;
  Circuit.Builder.add_output b !prev;
  Circuit.Builder.finalize b

let test_pooled_wide_and_fused_narrow () =
  let c = wide_then_narrow () in
  let seq = Levels.run c in
  List.iter
    (fun domains ->
      let par = Levels.run ~domains c in
      Alcotest.(check (array int))
        (Printf.sprintf "pooled sweep identical at domains=%d" domains)
        seq.Propagate.per_net par.Propagate.per_net;
      for i = 0 to Circuit.num_nets c - 1 do
        Alcotest.(check int)
          (Printf.sprintf "level of %s at domains=%d" (Circuit.net_name c i) domains)
          (Circuit.level c i)
          par.Propagate.per_net.(i)
      done)
    [ 2; 3; 4 ]

let test_update_union_of_two_cones () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let evals = ref 0 in
  let module Counting = Propagate.Make (struct
    type state = int

    let source _ = 0

    let eval _circuit _id _driver operands =
      incr evals;
      1 + Array.fold_left max 0 operands
  end) in
  let base = Counting.run c in
  let roots =
    match Circuit.primary_inputs c with a :: b :: _ -> [ a; b ] | _ -> assert false
  in
  (* independent marking of the union cone, register-bounded like the
     engine's *)
  let dirty = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem dirty id) then begin
      Hashtbl.replace dirty id ();
      Array.iter
        (fun out ->
          match Circuit.driver c out with
          | Circuit.Dff_output _ -> ()
          | Circuit.Gate _ | Circuit.Input -> mark out)
        (Circuit.fanout c id)
    end
  in
  List.iter mark roots;
  let dirty_gates =
    Array.to_list (Circuit.topo_gates c) |> List.filter (Hashtbl.mem dirty) |> List.length
  in
  evals := 0;
  let updated = Counting.update base ~changed:roots in
  Alcotest.(check int) "update evaluates the union cone once" dirty_gates !evals;
  Alcotest.(check (array int)) "update preserves values" base.Propagate.per_net
    updated.Propagate.per_net

let test_empty_circuit () =
  (* a source-only circuit propagates to just the seeds *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_output b "a";
  let c = Circuit.Builder.finalize b in
  let r = Levels.run c in
  Alcotest.(check (array int)) "single seeded source" [| 0 |] r.Propagate.per_net

let suite =
  [
    Alcotest.test_case "levels domain at 1/2/4 domains" `Quick test_levels_domain;
    Alcotest.test_case "domain count validated" `Quick test_domains_validated;
    Alcotest.test_case "instrument hook" `Quick test_instrument_hook;
    Alcotest.test_case "update touches only the cone" `Quick test_update_touches_only_the_cone;
    Alcotest.test_case "pooled wide level + fused narrow chain" `Quick
      test_pooled_wide_and_fused_narrow;
    Alcotest.test_case "update on the union of two cones" `Quick
      test_update_union_of_two_cones;
    Alcotest.test_case "source-only circuit" `Quick test_empty_circuit;
  ]
