(* The flat struct-of-arrays kernel (Spsta_engine.Flat) against the
   boxed record engine: Int64-exact bit-identity across engines and
   domain counts on randomly generated circuits, dirty-cone update
   equivalence, sanitizer parity against the float slots, and the
   bench-history regression detector that guards the kernel's numbers. *)

module Circuit = Spsta_netlist.Circuit
module Generator = Spsta_netlist.Generator
module Gate_kind = Spsta_logic.Gate_kind
module Normal = Spsta_dist.Normal
module Ssta = Spsta_ssta.Ssta
module Sta = Spsta_ssta.Sta
module Sanitize = Spsta_engine.Propagate.Sanitize
module Rng = Spsta_util.Rng
module Json = Spsta_server.Json
module Bench_track = Spsta_server.Bench_track

let bits = Int64.bits_of_float

let arrival_bits (a : Ssta.arrival) =
  ( bits (Normal.mean a.Ssta.rise),
    bits (Normal.stddev a.Ssta.rise),
    bits (Normal.mean a.Ssta.fall),
    bits (Normal.stddev a.Ssta.fall) )

let assert_ssta_identical what c a b =
  for i = 0 to Circuit.num_nets c - 1 do
    let xa = Ssta.arrival a i and xb = Ssta.arrival b i in
    if arrival_bits xa <> arrival_bits xb then
      Alcotest.failf "%s: net %s differs: rise %.17g/%.17g vs %.17g/%.17g, fall %.17g/%.17g vs %.17g/%.17g"
        what (Circuit.net_name c i) (Normal.mean xa.Ssta.rise) (Normal.stddev xa.Ssta.rise)
        (Normal.mean xb.Ssta.rise) (Normal.stddev xb.Ssta.rise) (Normal.mean xa.Ssta.fall)
        (Normal.stddev xa.Ssta.fall) (Normal.mean xb.Ssta.fall) (Normal.stddev xb.Ssta.fall)
  done

let assert_sta_identical what c a b =
  for i = 0 to Circuit.num_nets c - 1 do
    let xa = Sta.bounds a i and xb = Sta.bounds b i in
    if bits xa.Sta.earliest <> bits xb.Sta.earliest || bits xa.Sta.latest <> bits xb.Sta.latest
    then
      Alcotest.failf "%s: net %s differs: [%.17g, %.17g] vs [%.17g, %.17g]" what
        (Circuit.net_name c i) xa.Sta.earliest xa.Sta.latest xb.Sta.earliest xb.Sta.latest
  done

(* ---------- random workloads, reproducible from one seed ---------- *)

let random_circuit seed =
  let rng = Rng.create ~seed in
  Generator.generate
    { Generator.name = Printf.sprintf "flatq%d" seed;
      n_inputs = 3 + Rng.int rng 8;
      n_outputs = 2 + Rng.int rng 5;
      n_dffs = Rng.int rng 6;
      n_gates = 30 + Rng.int rng 170;
      target_depth = 3 + Rng.int rng 8;
      seed }

(* Per-net functions must be pure (the engines may consult them in any
   order), so each net gets its own O(1) substream. *)
let arrival_of seed id =
  let rng = Rng.stream ~seed id in
  let normal () =
    let mu = Rng.gaussian rng ~mu:0.5 ~sigma:1.0 in
    Normal.make ~mu ~sigma:(Float.abs (Rng.gaussian rng ~mu:0.8 ~sigma:0.5))
  in
  let rise = normal () in
  let fall = normal () in
  { Ssta.rise; fall }

let delay_rf_of seed id =
  let rng = Rng.stream ~seed (1_000_000 + id) in
  ( Float.abs (Rng.gaussian rng ~mu:1.0 ~sigma:0.3),
    Float.abs (Rng.gaussian rng ~mu:1.2 ~sigma:0.3) )

(* ---------- bit-identity: record vs flat, sequential vs parallel ---------- *)

let prop_engines_bit_identical =
  QCheck.Test.make ~name:"flat = record, sequential = parallel (SSTA, Int64-exact)" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let input_arrival_of = arrival_of (seed + 17) in
      let delay_rf = delay_rf_of (seed + 23) in
      let record = Ssta.analyze_rf ~delay_rf ~input_arrival_of ~engine:`Record c in
      let flat = Ssta.analyze_rf ~delay_rf ~input_arrival_of c in
      assert_ssta_identical "record vs flat" c record flat;
      List.iter
        (fun domains ->
          let par = Ssta.analyze_rf ~delay_rf ~input_arrival_of ~domains c in
          assert_ssta_identical (Printf.sprintf "flat seq vs domains=%d" domains) c flat par)
        [ 2; 3; 4 ];
      true)

(* the acceptance matrix on real netlists: uniform delays, domains 1/2/4 *)
let test_engines_identical_suite () =
  List.iter
    (fun name ->
      let c = Spsta_experiments.Benchmarks.load name in
      let record = Ssta.analyze ~engine:`Record c in
      List.iter
        (fun domains ->
          let flat = Ssta.analyze ~domains c in
          assert_ssta_identical (Printf.sprintf "%s domains=%d" name domains) c record flat)
        [ 1; 2; 4 ])
    [ "s344"; "s1238" ]

let prop_sta_bit_identical =
  QCheck.Test.make ~name:"flat = record (STA corner bounds, Int64-exact)" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let gate_delay_of id = fst (delay_rf_of (seed + 5) id) in
      let input_bounds_of id =
        let rng = Rng.stream ~seed:(seed + 11) id in
        let lo = Rng.gaussian rng ~mu:(-1.0) ~sigma:1.0 in
        { Sta.earliest = lo; latest = lo +. Float.abs (Rng.gaussian rng ~mu:2.0 ~sigma:1.0) }
      in
      let record = Sta.analyze ~gate_delay_of ~input_bounds_of ~engine:`Record c in
      let flat = Sta.analyze ~gate_delay_of ~input_bounds_of c in
      assert_sta_identical "record vs flat" c record flat;
      List.iter
        (fun domains ->
          let par = Sta.analyze ~gate_delay_of ~input_bounds_of ~domains c in
          assert_sta_identical (Printf.sprintf "flat seq vs domains=%d" domains) c flat par)
        [ 2; 4 ];
      true)

(* ---------- incremental update: dirty cone equivalence ---------- *)

let prop_update_rf_equivalent =
  QCheck.Test.make ~name:"update_rf = full re-analysis (flat and record, Int64-exact)" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = random_circuit seed in
      let old_arrival_of = arrival_of (seed + 17) in
      let delay_rf = delay_rf_of (seed + 23) in
      let sources = Circuit.sources c in
      let changed = List.nth sources (seed mod List.length sources) in
      let new_arrival_of id =
        if id = changed then arrival_of (seed + 99) id else old_arrival_of id
      in
      let check engine =
        let base = Ssta.analyze_rf ~delay_rf ~input_arrival_of:old_arrival_of ~engine c in
        let full = Ssta.analyze_rf ~delay_rf ~input_arrival_of:new_arrival_of ~engine c in
        let incr =
          Ssta.update_rf ~delay_rf ~input_arrival_of:new_arrival_of base ~changed:[ changed ]
        in
        assert_ssta_identical
          (Printf.sprintf "update_rf vs full (%s)"
             (match engine with `Flat -> "flat" | `Record -> "record"))
          c full incr
      in
      check `Flat;
      check `Record;
      true)

(* ---------- sanitizer parity on the float slots ---------- *)

let build_chain () =
  let b = Circuit.Builder.create ~name:"flatchain" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Or [ "n1"; "a" ];
  Circuit.Builder.add_gate b ~output:"n3" Gate_kind.Not [ "n2" ];
  Circuit.Builder.add_output b "n3";
  Circuit.Builder.finalize b

(* a NaN rise delay on one gate corrupts exactly one rise slot; the
   flat path's checker must name that net (and its driver and level)
   without ever materializing an arrival record *)
let test_flat_sanitizer_locates_fault () =
  let c = build_chain () in
  let poisoned = Circuit.find_exn c "n2" in
  let delay_rf id = if id = poisoned then (Float.nan, 1.0) else (1.0, 1.0) in
  (match Ssta.analyze_rf ~delay_rf ~check:true c with
  | (_ : Ssta.result) -> Alcotest.fail "NaN delay was not caught on the flat path"
  | exception Sanitize.Violation v ->
    Alcotest.(check string) "circuit" "flatchain" v.circuit;
    Alcotest.(check string) "net" "n2" v.net;
    Alcotest.(check string) "driver" "OR" v.driver;
    Alcotest.(check int) "level" 2 v.level;
    Alcotest.(check string) "rule" "non-finite" v.rule);
  (* with the checker off the same NaN flows through silently *)
  let r = Ssta.analyze_rf ~delay_rf ~check:false c in
  Alcotest.(check bool) "NaN propagates unchecked" true
    (Float.is_nan (Normal.mean (Ssta.arrival r poisoned).Ssta.rise))

let test_flat_sta_sanitizer_locates_fault () =
  let c = build_chain () in
  let poisoned = Circuit.find_exn c "n1" in
  let gate_delay_of id = if id = poisoned then Float.nan else 1.0 in
  match Sta.analyze ~gate_delay_of ~check:true c with
  | (_ : Sta.result) -> Alcotest.fail "NaN delay was not caught on the flat STA path"
  | exception Sanitize.Violation v ->
    Alcotest.(check string) "net" "n1" v.net;
    Alcotest.(check string) "driver" "AND" v.driver;
    Alcotest.(check string) "rule" "non-finite" v.rule

(* ---------- bench_track: metrics, history, regression gate ---------- *)

let bench_doc ?(incr = 2e-5) ?(grid_baseline = 0.04) ~ssta ~grid ~c100k_ssta () =
  Json.Obj
    [ ("schema", Json.string "spsta-bench/5");
      ("host_cores", Json.int 4);
      ("domains", Json.int 4);
      ( "circuits",
        Json.List
          [ Json.Obj
              [ ("name", Json.string "s344");
                ( "timings_s",
                  Json.Obj
                    [ ("ssta", Json.float ssta);
                      ("spsta_grid", Json.float grid);
                      ("spsta_grid_baseline", Json.float grid_baseline) ] );
                ( "sizing",
                  Json.Obj
                    [ ("full_analysis_s", Json.float 0.04);
                      ("incremental_update_s", Json.float incr) ] ) ] ] );
      ( "scale",
        Json.List
          [ Json.Obj
              [ ("name", Json.string "c100k");
                ("gates", Json.int 100_000);
                ("ssta_s", Json.float c100k_ssta);
                ("ssta_domains", Json.float 2.0) ] ] ) ]

let test_bench_track_metrics () =
  let doc = bench_doc ~ssta:0.5 ~grid:0.02 ~c100k_ssta:0.08 () in
  let m = Bench_track.metrics doc in
  let assoc k = List.assoc k m in
  Alcotest.(check (float 0.0)) "circuit timing" 0.5 (assoc "s344/ssta");
  Alcotest.(check (float 0.0)) "sizing timing" 0.04 (assoc "s344/sizing/full_analysis_s");
  Alcotest.(check (float 0.0)) "scale timing" 0.08 (assoc "c100k/ssta_s");
  Alcotest.(check bool) "ratios are not tracked" true
    (not (List.mem_assoc "c100k/ssta_domains" m));
  Alcotest.(check bool) "counts are not tracked" true (not (List.mem_assoc "c100k/gates" m))

let test_bench_track_compare () =
  let base = bench_doc ~ssta:0.5 ~grid:0.02 ~c100k_ssta:0.08 () in
  (* 50% regression on one metric, the others within threshold *)
  let regressed = bench_doc ~ssta:0.75 ~grid:0.021 ~c100k_ssta:0.081 () in
  let compared, regressions = Bench_track.compare_docs ~base ~current:regressed () in
  Alcotest.(check bool) "several metrics compared" true (compared >= 4);
  (match regressions with
  | [ r ] ->
    Alcotest.(check string) "regressed metric" "s344/ssta" r.Bench_track.metric;
    Alcotest.(check (float 1e-9)) "ratio" 1.5 r.Bench_track.ratio
  | other -> Alcotest.failf "expected exactly one regression, got %d" (List.length other));
  (* identical documents never regress *)
  let _, clean = Bench_track.compare_docs ~base ~current:base () in
  Alcotest.(check int) "self-compare is clean" 0 (List.length clean);
  (* the sizing incremental update (2e-5 s) sits below the baseline
     floor: even doubled it is timer jitter, not a regression *)
  let doubled_tiny = bench_doc ~incr:4e-5 ~ssta:0.5 ~grid:0.02 ~c100k_ssta:0.08 () in
  let _, small = Bench_track.compare_docs ~base ~current:doubled_tiny () in
  Alcotest.(check int) "sub-floor metrics ignored" 0 (List.length small);
  (* a few-millisecond metric blowing past the relative threshold but
     growing by less than the absolute floor is scheduler noise, not a
     regression the gate can act on *)
  let small_base = bench_doc ~ssta:0.5 ~grid:0.004 ~c100k_ssta:0.08 () in
  let small_drift = bench_doc ~ssta:0.5 ~grid:0.006 ~c100k_ssta:0.08 () in
  let _, drift = Bench_track.compare_docs ~base:small_base ~current:small_drift () in
  Alcotest.(check int) "sub-delta drift ignored" 0 (List.length drift);
  (* ... but the same relative jump with real absolute growth is caught *)
  let big_jump = bench_doc ~ssta:0.5 ~grid:0.012 ~c100k_ssta:0.08 () in
  let _, caught = Bench_track.compare_docs ~base:small_base ~current:big_jump () in
  Alcotest.(check int) "above-delta jump caught" 1 (List.length caught);
  (* reference entries (the deliberately-unoptimised speedup anchors)
     are recorded but never gated, however far they move *)
  let ref_jump = bench_doc ~grid_baseline:0.4 ~ssta:0.5 ~grid:0.02 ~c100k_ssta:0.08 () in
  let _, refs = Bench_track.compare_docs ~base ~current:ref_jump () in
  Alcotest.(check int) "baseline reference entries never gate" 0 (List.length refs);
  Alcotest.(check bool) "baseline reference entries still tracked" true
    (List.mem_assoc "s344/spsta_grid_baseline" (Bench_track.metrics ref_jump))

let test_bench_track_history () =
  let doc = bench_doc ~ssta:0.5 ~grid:0.02 ~c100k_ssta:0.08 () in
  let record = Bench_track.history_record ~commit:"abc123" ~utc:"2026-08-07T00:00:00Z" doc in
  (match Json.member "schema" record with
  | Some (Json.Str s) -> Alcotest.(check string) "schema" Bench_track.history_schema s
  | _ -> Alcotest.fail "history record has no schema");
  (match Json.member "metrics" record with
  | Some (Json.Obj fields) ->
    Alcotest.(check bool) "metrics flattened" true (List.mem_assoc "s344/ssta" fields)
  | _ -> Alcotest.fail "history record has no metrics");
  let path = Filename.temp_file "spsta_bench_history" ".jsonl" in
  Bench_track.append_history ~path record;
  Bench_track.append_history ~path record;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  Alcotest.(check int) "append-only: one line per record" 2 (List.length !lines);
  List.iter
    (fun line ->
      match Json.of_string_opt line with
      | Some (Json.Obj _) -> ()
      | Some _ | None -> Alcotest.fail "history line is not a JSON object")
    !lines

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engines_bit_identical;
    QCheck_alcotest.to_alcotest prop_sta_bit_identical;
    QCheck_alcotest.to_alcotest prop_update_rf_equivalent;
    Alcotest.test_case "flat = record on s344/s1238 at domains 1,2,4" `Quick
      test_engines_identical_suite;
    Alcotest.test_case "flat sanitizer locates a poisoned slot" `Quick
      test_flat_sanitizer_locates_fault;
    Alcotest.test_case "flat STA sanitizer locates a poisoned slot" `Quick
      test_flat_sta_sanitizer_locates_fault;
    Alcotest.test_case "bench_track metric extraction" `Quick test_bench_track_metrics;
    Alcotest.test_case "bench_track regression gate" `Quick test_bench_track_compare;
    Alcotest.test_case "bench_track history records" `Quick test_bench_track_history;
  ]
