module Circuit = Spsta_netlist.Circuit
module Generator = Spsta_netlist.Generator

let profile =
  { Generator.name = "t"; n_inputs = 6; n_outputs = 4; n_dffs = 5; n_gates = 60;
    target_depth = 7; seed = 1234 }

let test_interface_counts () =
  let c = Generator.generate profile in
  Alcotest.(check int) "inputs" 6 (List.length (Circuit.primary_inputs c));
  Alcotest.(check int) "outputs" 4 (List.length (Circuit.primary_outputs c));
  Alcotest.(check int) "dffs" 5 (List.length (Circuit.dffs c));
  Alcotest.(check int) "gates" 60 (Circuit.gate_count c)

let test_depth_reached () =
  let c = Generator.generate profile in
  Alcotest.(check bool) "depth at least target" true (Circuit.depth c >= 7)

let test_determinism () =
  let a = Generator.generate profile and b = Generator.generate profile in
  Alcotest.(check string) "identical bench text" (Spsta_netlist.Bench_io.to_string a)
    (Spsta_netlist.Bench_io.to_string b)

let test_seed_changes_structure () =
  let a = Generator.generate profile in
  let b = Generator.generate { profile with seed = profile.Generator.seed + 1 } in
  Alcotest.(check bool) "different seeds give different circuits" true
    (Spsta_netlist.Bench_io.to_string a <> Spsta_netlist.Bench_io.to_string b)

let test_deep_endpoint () =
  (* the spine output is a primary output, so the critical path reaches
     the target depth *)
  let c = Generator.generate profile in
  let max_endpoint_level =
    List.fold_left (fun acc e -> max acc (Circuit.level c e)) 0 (Circuit.endpoints c)
  in
  Alcotest.(check bool) "deepest endpoint at target depth" true (max_endpoint_level >= 7)

let test_validation () =
  let expect_invalid p =
    match Generator.generate p with
    | (_ : Circuit.t) -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid { profile with n_inputs = 0; n_dffs = 0 };
  expect_invalid { profile with n_outputs = 0 };
  expect_invalid { profile with target_depth = 0 };
  expect_invalid { profile with n_gates = 3 (* below target depth *) }

let test_iscas_profiles () =
  Alcotest.(check int) "ten profiles" 10 (List.length Generator.iscas89_profiles);
  List.iter
    (fun p ->
      let c = Generator.generate p in
      Alcotest.(check int)
        (p.Generator.name ^ " gate count")
        p.Generator.n_gates (Circuit.gate_count c);
      Alcotest.(check bool)
        (p.Generator.name ^ " depth")
        true
        (Circuit.depth c >= p.Generator.target_depth))
    Generator.iscas89_profiles

let test_find_profile () =
  Alcotest.(check bool) "s344 exists" true (Generator.find_profile "s344" <> None);
  Alcotest.(check bool) "unknown absent" true (Generator.find_profile "s9999" = None)

let generated_always_valid =
  QCheck.Test.make ~name:"generated circuits are always valid" ~count:25
    QCheck.(
      quad (int_range 1 8) (int_range 1 5) (int_range 0 6) (int_range 5 80))
    (fun (n_inputs, n_outputs, n_dffs, n_gates) ->
      let target_depth = 1 + (n_gates / 10) in
      let p =
        { Generator.name = "q"; n_inputs; n_outputs; n_dffs; n_gates; target_depth; seed = 5 }
      in
      let c = Generator.generate p in
      Circuit.gate_count c = n_gates && Circuit.depth c >= target_depth)

let suite =
  [
    Alcotest.test_case "interface counts" `Quick test_interface_counts;
    Alcotest.test_case "depth reached" `Quick test_depth_reached;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_structure;
    Alcotest.test_case "deep endpoint" `Quick test_deep_endpoint;
    Alcotest.test_case "profile validation" `Quick test_validation;
    Alcotest.test_case "ISCAS'89 profiles" `Quick test_iscas_profiles;
    Alcotest.test_case "find_profile" `Quick test_find_profile;
    QCheck_alcotest.to_alcotest generated_always_valid;
  ]

let test_extended_profiles () =
  Alcotest.(check int) "four extended profiles" 4 (List.length Generator.extended_profiles);
  (* generate the smallest extended profile and sanity-check it; the
     larger ones are covered by the scaling bench *)
  match Generator.find_profile "s5378" with
  | None -> Alcotest.fail "s5378 profile missing"
  | Some p ->
    let c = Generator.generate p in
    Alcotest.(check int) "s5378 gates" 2779 (Circuit.gate_count c);
    Alcotest.(check bool) "s5378 depth" true (Circuit.depth c >= 12)

let suite = suite @ [ Alcotest.test_case "extended profiles" `Quick test_extended_profiles ]

let test_scale_profile_smoke () =
  (* the c100k scale profile end-to-end: generate, structural lint,
     SSTA — the pipeline `make scale-smoke` runs with timing asserts *)
  Alcotest.(check int) "two scale profiles" 2 (List.length Generator.scale_profiles);
  match Generator.find_profile "c100k" with
  | None -> Alcotest.fail "c100k profile missing"
  | Some p ->
    let c = Generator.generate p in
    Alcotest.(check int) "c100k gates" 100_000 (Circuit.gate_count c);
    Alcotest.(check bool) "c100k depth" true (Circuit.depth c >= p.Generator.target_depth);
    let errors =
      Spsta_lint.Lint.count Spsta_lint.Lint.Error (Spsta_lint.Lint.check_structure c)
    in
    Alcotest.(check int) "lint clean" 0 errors;
    let r = Spsta_ssta.Ssta.analyze c in
    let a = Spsta_ssta.Ssta.max_arrival r `Rise in
    Alcotest.(check bool) "finite critical arrival" true
      (Float.is_finite (Spsta_dist.Normal.mean a)
      && Float.is_finite (Spsta_dist.Normal.stddev a));
    (* inverting gates swap rise/fall along the way, so the rise-critical
       endpoint need not sit at full depth — just require a real path *)
    Alcotest.(check bool) "non-trivial arrival" true (Spsta_dist.Normal.mean a > 1.0)

let suite = suite @ [ Alcotest.test_case "c100k scale profile smoke" `Slow test_scale_profile_smoke ]
