module Histogram = Spsta_util.Histogram

let test_create_invalid () =
  Alcotest.check_raises "zero bins" (Invalid_argument "Histogram.create: bins must be positive")
    (fun () -> ignore (Histogram.create ~lo:0.0 ~hi:1.0 ~bins:0));
  Alcotest.check_raises "inverted range" (Invalid_argument "Histogram.create: hi must exceed lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

let test_counts_and_density () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9 ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "bin 1 density" (2.0 /. 4.0 /. 1.0) (Histogram.density h 1);
  (* density integrates to one *)
  let integral = ref 0.0 in
  for i = 0 to Histogram.bin_count h - 1 do
    integral := !integral +. (Histogram.density h i *. 1.0)
  done;
  Alcotest.(check (float 1e-9)) "unit integral" 1.0 !integral

(* regression: out-of-range samples used to be clamped into the end
   bins, silently distorting the tails; they are now counted apart *)
let test_out_of_range () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h (-5.0);
  Histogram.add h 42.0;
  Histogram.add h 0.25;
  Alcotest.(check int) "only the in-range sample counted" 1 (Histogram.count h);
  Alcotest.(check int) "low sample in underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "high sample in overflow" 1 (Histogram.overflow h);
  Alcotest.(check int) "seen = in-range + out-of-range" 3 (Histogram.seen h);
  Alcotest.(check int) "end bins untouched by out-of-range" 0 (Histogram.bin_samples h 1);
  (* density excludes out-of-range mass: in-range bins integrate to 1 *)
  let integral = ref 0.0 in
  for i = 0 to Histogram.bin_count h - 1 do
    integral := !integral +. (Histogram.density h i *. 0.5)
  done;
  Alcotest.(check (float 1e-9)) "unit integral over in-range mass" 1.0 !integral;
  (* hi itself belongs to the overflow side of the half-open range *)
  Histogram.add h 1.0;
  Alcotest.(check int) "hi counts as overflow" 2 (Histogram.overflow h)

let test_of_samples () =
  let samples = Array.init 1000 (fun i -> float_of_int i /. 100.0) in
  let h = Histogram.of_samples ~bins:20 samples in
  Alcotest.(check int) "all samples placed" 1000 (Histogram.count h);
  Alcotest.check_raises "empty input" (Invalid_argument "Histogram.of_samples: empty array")
    (fun () -> ignore (Histogram.of_samples [||]))

let test_of_samples_constant () =
  let h = Histogram.of_samples ~bins:5 [| 2.0; 2.0; 2.0 |] in
  Alcotest.(check int) "constant samples placed" 3 (Histogram.count h)

let test_render () =
  let h = Histogram.create ~lo:0.0 ~hi:2.0 ~bins:2 in
  List.iter (Histogram.add h) [ 0.5; 0.6; 1.5 ];
  let text = Histogram.render ~width:10 h in
  Alcotest.(check bool) "bars rendered" true (String.length text > 0);
  Alcotest.(check bool) "contains hash bars" true (String.contains text '#')

let density_integral_qcheck =
  QCheck.Test.make ~name:"histogram density integrates to 1" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (float_range (-10.0) 10.0))
    (fun values ->
      let h = Histogram.of_samples (Array.of_list values) in
      let integral = ref 0.0 in
      let width =
        match Histogram.bin_count h with
        | 0 -> 0.0
        | _ -> Histogram.bin_center h 1 -. Histogram.bin_center h 0
      in
      for i = 0 to Histogram.bin_count h - 1 do
        integral := !integral +. (Histogram.density h i *. width)
      done;
      Float.abs (!integral -. 1.0) < 1e-6)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_invalid;
    Alcotest.test_case "counts and density" `Quick test_counts_and_density;
    Alcotest.test_case "out-of-range accounting" `Quick test_out_of_range;
    Alcotest.test_case "of_samples" `Quick test_of_samples;
    Alcotest.test_case "of_samples constant data" `Quick test_of_samples_constant;
    Alcotest.test_case "render" `Quick test_render;
    QCheck_alcotest.to_alcotest density_integral_qcheck;
  ]
