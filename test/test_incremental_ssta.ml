(* Incremental re-analysis through the engine for the min/max analyzers:
   Ssta.update and Sta.update must match a full re-analysis on the dirty
   cone and share everything outside it. *)

module Circuit = Spsta_netlist.Circuit
module Normal = Spsta_dist.Normal
module Ssta = Spsta_ssta.Ssta
module Sta = Spsta_ssta.Sta

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* ---------- SSTA ---------- *)

let default_arrival = { Ssta.rise = Normal.make ~mu:0.0 ~sigma:1.0; fall = Normal.make ~mu:0.0 ~sigma:1.0 }
let late_arrival = { Ssta.rise = Normal.make ~mu:2.0 ~sigma:0.5; fall = Normal.make ~mu:2.5 ~sigma:0.25 }

let ssta_equal c name full incremental =
  for i = 0 to Circuit.num_nets c - 1 do
    let a = Ssta.arrival full i and b = Ssta.arrival incremental i in
    let label = Printf.sprintf "%s/%s" name (Circuit.net_name c i) in
    close (label ^ " rise mean") (Normal.mean a.Ssta.rise) (Normal.mean b.Ssta.rise) ~tol:1e-12;
    close (label ^ " rise sigma") (Normal.stddev a.Ssta.rise) (Normal.stddev b.Ssta.rise)
      ~tol:1e-12;
    close (label ^ " fall mean") (Normal.mean a.Ssta.fall) (Normal.mean b.Ssta.fall) ~tol:1e-12;
    close (label ^ " fall sigma") (Normal.stddev a.Ssta.fall) (Normal.stddev b.Ssta.fall)
      ~tol:1e-12
  done

let test_ssta_update_matches_full () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let base = Ssta.analyze c in
  let changed = List.hd (Circuit.primary_inputs c) in
  let arrival_of s = if s = changed then late_arrival else default_arrival in
  let full = Ssta.analyze ~input_arrival_of:arrival_of c in
  let incremental = Ssta.update base ~input_arrival_of:arrival_of ~changed:[ changed ] in
  ssta_equal c "source change" full incremental

let test_ssta_update_multi_change () =
  let c = Spsta_experiments.Benchmarks.load "s298" in
  let base = Ssta.analyze c in
  let sources = Circuit.sources c in
  let changed = List.filteri (fun i _ -> i mod 3 = 0) sources in
  let arrival_of s = if List.mem s changed then late_arrival else default_arrival in
  let full = Ssta.analyze ~input_arrival_of:arrival_of c in
  let incremental = Ssta.update base ~input_arrival_of:arrival_of ~changed in
  ssta_equal c "multi change" full incremental

let test_ssta_update_is_pure () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let base = Ssta.analyze c in
  let g17 = Circuit.find_exn c "G17" in
  let before = Normal.mean (Ssta.arrival base g17).Ssta.rise in
  let changed = List.hd (Circuit.sources c) in
  let arrival_of s = if s = changed then late_arrival else default_arrival in
  let _ = Ssta.update base ~input_arrival_of:arrival_of ~changed:[ changed ] in
  let after = Normal.mean (Ssta.arrival base g17).Ssta.rise in
  close "original untouched" before after ~tol:0.0

let clean_gates c changed =
  let dirty = Hashtbl.create 64 in
  let rec mark id =
    if not (Hashtbl.mem dirty id) then begin
      Hashtbl.replace dirty id ();
      Array.iter mark (Circuit.fanout c id)
    end
  in
  mark changed;
  Array.to_list (Circuit.topo_gates c) |> List.filter (fun g -> not (Hashtbl.mem dirty g))

(* Outside the dirty cone an update must carry the base values over
   bit-for-bit (the flat engine copies slots; bitwise equality is the
   portable contract), and the record engine moreover shares the state
   records physically. *)
let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let test_ssta_clean_cone_shared () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let changed = List.hd (Circuit.sources c) in
  let arrival_of s = if s = changed then late_arrival else default_arrival in
  let clean = clean_gates c changed in
  Alcotest.(check bool) "some clean gates exist" true (clean <> []);
  let base = Ssta.analyze c in
  let incremental = Ssta.update base ~input_arrival_of:arrival_of ~changed:[ changed ] in
  List.iter
    (fun g ->
      let a = Ssta.arrival base g and b = Ssta.arrival incremental g in
      Alcotest.(check bool) "clean arrival bitwise unchanged" true
        (bits_equal (Normal.mean a.Ssta.rise) (Normal.mean b.Ssta.rise)
        && bits_equal (Normal.stddev a.Ssta.rise) (Normal.stddev b.Ssta.rise)
        && bits_equal (Normal.mean a.Ssta.fall) (Normal.mean b.Ssta.fall)
        && bits_equal (Normal.stddev a.Ssta.fall) (Normal.stddev b.Ssta.fall)))
    clean;
  let base = Ssta.analyze ~engine:`Record c in
  let incremental = Ssta.update base ~input_arrival_of:arrival_of ~changed:[ changed ] in
  List.iter
    (fun g ->
      Alcotest.(check bool) "clean arrival physically shared (record engine)" true
        (Ssta.arrival base g == Ssta.arrival incremental g))
    clean

let test_ssta_noop_update () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let base = Ssta.analyze c in
  let incremental = Ssta.update base ~changed:[] in
  ssta_equal c "noop" base incremental

(* Idempotence under mutation: resize a gate, update, resize it back,
   update again — the second update recomputes the same cone from the
   same inputs with the same delays, so the result must be bit-identical
   to the untouched analysis (exact float equality, not tolerance). *)
let test_ssta_resize_roundtrip_bit_identical () =
  let module Sized = Spsta_netlist.Sized_library in
  let module Transform = Spsta_netlist.Transform in
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let sized = Sized.default in
  let asg = Sized.initial c in
  let delay_rf id = Sized.delay_rf sized c asg id in
  let base = Ssta.analyze_rf ~delay_rf c in
  let gates = Circuit.topo_gates c in
  (* a mid-level gate: non-trivial cone both above and below *)
  let g = gates.(Array.length gates / 2) in
  let up = Ssta.update_rf ~delay_rf base ~changed:(Transform.resize_gate sized c asg g ~size:3) in
  let back =
    Ssta.update_rf ~delay_rf up ~changed:(Transform.resize_gate sized c asg g ~size:0)
  in
  Alcotest.(check int) "assignment restored" 0 (Sized.size_of asg g);
  for i = 0 to Circuit.num_nets c - 1 do
    let a = Ssta.arrival base i and b = Ssta.arrival back i in
    let label = Printf.sprintf "roundtrip/%s" (Circuit.net_name c i) in
    close (label ^ " rise mean") (Normal.mean a.Ssta.rise) (Normal.mean b.Ssta.rise) ~tol:0.0;
    close (label ^ " rise sigma") (Normal.stddev a.Ssta.rise) (Normal.stddev b.Ssta.rise) ~tol:0.0;
    close (label ^ " fall mean") (Normal.mean a.Ssta.fall) (Normal.mean b.Ssta.fall) ~tol:0.0;
    close (label ^ " fall sigma") (Normal.stddev a.Ssta.fall) (Normal.stddev b.Ssta.fall) ~tol:0.0
  done

(* ---------- STA ---------- *)

let default_window = { Sta.earliest = 0.0; latest = 0.0 }
let wide_window = { Sta.earliest = -1.0; latest = 4.0 }

let sta_equal c name full incremental =
  for i = 0 to Circuit.num_nets c - 1 do
    let a = Sta.bounds full i and b = Sta.bounds incremental i in
    let label = Printf.sprintf "%s/%s" name (Circuit.net_name c i) in
    close (label ^ " earliest") a.Sta.earliest b.Sta.earliest ~tol:1e-12;
    close (label ^ " latest") a.Sta.latest b.Sta.latest ~tol:1e-12
  done

let test_sta_update_matches_full () =
  let c = Spsta_experiments.Benchmarks.load "s386" in
  let base = Sta.analyze c in
  let changed = List.hd (Circuit.primary_inputs c) in
  let bounds_of s = if s = changed then wide_window else default_window in
  let full = Sta.analyze ~input_bounds_of:bounds_of c in
  let incremental = Sta.update base ~input_bounds_of:bounds_of ~changed:[ changed ] in
  sta_equal c "source change" full incremental

let test_sta_clean_cone_shared () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let changed = List.hd (Circuit.sources c) in
  let bounds_of s = if s = changed then wide_window else default_window in
  let clean = clean_gates c changed in
  Alcotest.(check bool) "some clean gates exist" true (clean <> []);
  let base = Sta.analyze c in
  let incremental = Sta.update base ~input_bounds_of:bounds_of ~changed:[ changed ] in
  List.iter
    (fun g ->
      let a = Sta.bounds base g and b = Sta.bounds incremental g in
      Alcotest.(check bool) "clean bounds bitwise unchanged" true
        (bits_equal a.Sta.earliest b.Sta.earliest && bits_equal a.Sta.latest b.Sta.latest))
    clean;
  let base = Sta.analyze ~engine:`Record c in
  let incremental = Sta.update base ~input_bounds_of:bounds_of ~changed:[ changed ] in
  List.iter
    (fun g ->
      Alcotest.(check bool) "clean bounds physically shared (record engine)" true
        (Sta.bounds base g == Sta.bounds incremental g))
    clean

let test_sta_noop_update () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let base = Sta.analyze c in
  let incremental = Sta.update base ~changed:[] in
  sta_equal c "noop" base incremental

let suite =
  [
    Alcotest.test_case "SSTA source change" `Quick test_ssta_update_matches_full;
    Alcotest.test_case "SSTA multiple changes" `Quick test_ssta_update_multi_change;
    Alcotest.test_case "SSTA update is pure" `Quick test_ssta_update_is_pure;
    Alcotest.test_case "SSTA clean cone shared" `Quick test_ssta_clean_cone_shared;
    Alcotest.test_case "SSTA no-op update" `Quick test_ssta_noop_update;
    Alcotest.test_case "SSTA resize round-trip bit-identical" `Quick
      test_ssta_resize_roundtrip_bit_identical;
    Alcotest.test_case "STA source change" `Quick test_sta_update_matches_full;
    Alcotest.test_case "STA clean cone shared" `Quick test_sta_clean_cone_shared;
    Alcotest.test_case "STA no-op update" `Quick test_sta_noop_update;
  ]
