(* Cross-engine integration properties on randomly generated circuits:
   the different analyses must agree wherever their assumptions
   coincide. *)

module Circuit = Spsta_netlist.Circuit
module Generator = Spsta_netlist.Generator
module Transform = Spsta_netlist.Transform
module Value4 = Spsta_logic.Value4
module Input_spec = Spsta_sim.Input_spec
module Monte_carlo = Spsta_sim.Monte_carlo
module Logic_sim = Spsta_sim.Logic_sim
module Four_value = Spsta_core.Four_value
module A = Spsta_core.Analyzer.Moments
module Normal = Spsta_dist.Normal

let random_circuit seed =
  Generator.generate
    { Generator.name = "rnd"; n_inputs = 4; n_outputs = 3; n_dffs = 3; n_gates = 35;
      target_depth = 5; seed }

(* property: analyzer probabilities are valid distributions at every
   net, and t.o.p. masses match transition probabilities *)
let probabilities_well_formed =
  QCheck.Test.make ~name:"SPSTA per-net probabilities well-formed" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c = random_circuit seed in
      let r = A.analyze c ~spec:(fun _ -> Input_spec.case_i) in
      Array.for_all
        (fun g ->
          let s = A.signal r g in
          let p = s.A.probs in
          let sum =
            p.Four_value.p_zero +. p.Four_value.p_one +. p.Four_value.p_rise
            +. p.Four_value.p_fall
          in
          Float.abs (sum -. 1.0) < 1e-9
          && Float.abs (Spsta_dist.Mixture.total_weight s.A.rise -. p.Four_value.p_rise) < 1e-6
          && Float.abs (Spsta_dist.Mixture.total_weight s.A.fall -. p.Four_value.p_fall) < 1e-6)
        (Circuit.topo_gates c))

(* property: arrival times in any simulation run are bounded by
   level + latest source arrival (STA's structural bound) *)
let sim_respects_sta_bound =
  QCheck.Test.make ~name:"simulated arrivals within STA bound" ~count:20
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c = random_circuit seed in
      let rng = Spsta_util.Rng.create ~seed:(seed + 7) in
      let ok = ref true in
      for _ = 1 to 20 do
        let r = Logic_sim.run_random rng c ~spec:(fun _ -> Input_spec.case_i) in
        (* latest source arrival this run *)
        let launch =
          List.fold_left
            (fun acc s ->
              if Value4.is_transition r.Logic_sim.values.(s) then
                Float.max acc r.Logic_sim.times.(s)
              else acc)
            0.0 (Circuit.sources c)
        in
        Array.iter
          (fun g ->
            if
              Value4.is_transition r.Logic_sim.values.(g)
              && r.Logic_sim.times.(g) > float_of_int (Circuit.level c g) +. launch +. 1e-9
            then ok := false)
          (Circuit.topo_gates c)
      done;
      !ok)

(* property: decomposing gates does not change any surviving net's
   four-value probabilities (the analysis sees the same functions) *)
let decompose_preserves_probs =
  QCheck.Test.make ~name:"decomposition preserves four-value probabilities" ~count:15
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c = random_circuit seed in
      let d = Transform.decompose_gates c in
      let spec _ = Input_spec.case_ii in
      let rc = A.analyze c ~spec and rd = A.analyze d ~spec in
      List.for_all
        (fun e ->
          let e' = Circuit.find_exn d (Circuit.net_name c e) in
          let pc = (A.signal rc e).A.probs and pd = (A.signal rd e').A.probs in
          Float.abs (pc.Four_value.p_rise -. pd.Four_value.p_rise) < 1e-9
          && Float.abs (pc.Four_value.p_one -. pd.Four_value.p_one) < 1e-9)
        (Circuit.endpoints c))

(* property: the moment and discretised backends agree on probabilities
   exactly and on moments closely *)
let backends_agree =
  QCheck.Test.make ~name:"moment and grid backends agree" ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let c = random_circuit seed in
      let module B = (val Spsta_core.Top.discrete_backend ~dt:0.05 ()) in
      let module D = Spsta_core.Analyzer.Make (B) in
      let spec _ = Input_spec.case_i in
      let rm = A.analyze c ~spec and rd = D.analyze c ~spec in
      List.for_all
        (fun e ->
          let mm, ms, mp = A.transition_stats (A.signal rm e) `Rise in
          let dm, ds, dp = D.transition_stats (D.signal rd e) `Rise in
          Float.abs (mp -. dp) < 1e-6
          && (mp < 1e-6 || (Float.abs (mm -. dm) < 0.12 && Float.abs (ms -. ds) < 0.12)))
        (Circuit.endpoints c))

(* property: incremental update equals full re-analysis for a random
   subset of changed sources *)
let incremental_equals_full =
  QCheck.Test.make ~name:"incremental update = full analysis" ~count:15
    QCheck.(pair (int_range 0 100_000) (int_range 0 255))
    (fun (seed, mask) ->
      let c = random_circuit seed in
      let sources = Circuit.sources c in
      let changed = List.filteri (fun i _ -> mask land (1 lsl (i mod 8)) <> 0) sources in
      let base_spec _ = Input_spec.case_i in
      let new_spec s = if List.mem s changed then Input_spec.case_ii else Input_spec.case_i in
      let base = A.analyze c ~spec:base_spec in
      let full = A.analyze c ~spec:new_spec in
      let inc = A.update base ~changed ~spec:new_spec in
      Array.for_all
        (fun g ->
          let f = A.signal full g and i = A.signal inc g in
          let fm, fs, fp = A.transition_stats f `Rise in
          let im, is_, ip = A.transition_stats i `Rise in
          Float.abs (fp -. ip) < 1e-12
          && Float.abs (fm -. im) < 1e-12
          && Float.abs (fs -. is_) < 1e-12)
        (Circuit.topo_gates c))

(* SPSTA vs Monte Carlo on a mid-size random circuit: statistical
   agreement of probabilities at every net (reconvergence allows a
   modest gap) *)
let test_spsta_vs_mc_probabilities () =
  let c = random_circuit 424242 in
  let spec _ = Input_spec.case_i in
  let r = A.analyze c ~spec in
  let mc = Monte_carlo.simulate ~runs:20_000 ~seed:5 c ~spec in
  let worst = ref 0.0 in
  Array.iter
    (fun g ->
      let predicted = (A.signal r g).A.probs.Four_value.p_rise in
      let observed = Monte_carlo.p_rise (Monte_carlo.stats mc g) in
      worst := Float.max !worst (Float.abs (predicted -. observed)))
    (Circuit.topo_gates c);
  if !worst > 0.15 then Alcotest.failf "worst probability gap %.3f" !worst

(* canonical SSTA with zero process sigma must equal classical SSTA *)
let test_canonical_reduces_to_ssta () =
  let c = Spsta_experiments.Benchmarks.load "s298" in
  let model = Spsta_variation.Param_model.create ~grid:2 () in
  let placement = Spsta_variation.Param_model.place model c in
  let canonical = Spsta_variation.Canonical_ssta.analyze model placement c in
  let classic = Spsta_ssta.Ssta.analyze c in
  List.iter
    (fun e ->
      let a = Spsta_variation.Canonical_ssta.arrival canonical e in
      let b = Spsta_ssta.Ssta.arrival classic e in
      let dm =
        Float.abs
          (a.Spsta_variation.Canonical_ssta.rise.Spsta_variation.Canonical.mean
          -. Normal.mean b.Spsta_ssta.Ssta.rise)
      in
      let ds =
        Float.abs
          (Spsta_variation.Canonical.stddev a.Spsta_variation.Canonical_ssta.rise
          -. Normal.stddev b.Spsta_ssta.Ssta.rise)
      in
      if dm > 1e-6 || ds > 1e-6 then
        Alcotest.failf "mismatch at %s: dmean %.2e dsigma %.2e" (Circuit.net_name c e) dm ds)
    (Circuit.endpoints c)

let suite =
  [
    QCheck_alcotest.to_alcotest probabilities_well_formed;
    QCheck_alcotest.to_alcotest sim_respects_sta_bound;
    QCheck_alcotest.to_alcotest decompose_preserves_probs;
    QCheck_alcotest.to_alcotest backends_agree;
    QCheck_alcotest.to_alcotest incremental_equals_full;
    Alcotest.test_case "SPSTA vs MC probabilities" `Slow test_spsta_vs_mc_probabilities;
    Alcotest.test_case "canonical SSTA reduces to classical" `Quick test_canonical_reduces_to_ssta;
  ]
