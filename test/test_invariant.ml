(* Sanitizer predicates ({!Spsta_lint.Invariant}): unit coverage of each
   checker plus QCheck properties showing the Discrete grid operations
   the SPSTA backend performs — scale, add, convolve, max/min — conserve
   mass within the tracked truncation bound, i.e. exactly the invariant
   the engine-wired sanitizer enforces per gate. *)

module Invariant = Spsta_lint.Invariant
module Discrete = Spsta_dist.Discrete
module Normal = Spsta_dist.Normal

let rules issues = List.map (fun i -> i.Invariant.rule) issues

(* ---------- unit checks ---------- *)

let test_finite () =
  Alcotest.(check bool) "1.0" true (Invariant.finite 1.0);
  Alcotest.(check bool) "nan" false (Invariant.finite Float.nan);
  Alcotest.(check bool) "inf" false (Invariant.finite Float.infinity)

let test_check_finite () =
  Alcotest.(check (list string)) "healthy" [] (rules (Invariant.check_finite ~what:"x" 0.5));
  Alcotest.(check (list string)) "nan" [ "non-finite" ]
    (rules (Invariant.check_finite ~what:"x" Float.nan))

let test_check_nonnegative () =
  Alcotest.(check (list string)) "healthy" [] (rules (Invariant.check_nonnegative ~what:"m" 0.0));
  Alcotest.(check (list string)) "negative" [ "negative-mass" ]
    (rules (Invariant.check_nonnegative ~what:"m" (-0.1)))

let test_check_prob () =
  Alcotest.(check (list string)) "healthy" [] (rules (Invariant.check_prob ~what:"p" 1.0));
  Alcotest.(check (list string)) "above one" [ "probability-range" ]
    (rules (Invariant.check_prob ~what:"p" 1.1));
  (* within tolerance of the boundary is healthy *)
  Alcotest.(check (list string)) "tolerated overshoot" []
    (rules (Invariant.check_prob ~what:"p" (1.0 +. (Invariant.prob_tolerance /. 2.0))))

let test_check_prob_sum () =
  Alcotest.(check (list string)) "sums to one" []
    (rules (Invariant.check_prob_sum ~what:"v" [ ("a", 0.25); ("b", 0.75) ]));
  Alcotest.(check (list string)) "short sum" [ "probability-sum" ]
    (rules (Invariant.check_prob_sum ~what:"v" [ ("a", 0.25); ("b", 0.5) ]))

let test_check_normal () =
  Alcotest.(check (list string)) "healthy" []
    (rules (Invariant.check_normal ~what:"a" Normal.standard));
  Alcotest.(check (list string)) "nan mean" [ "non-finite" ]
    (rules (Invariant.check_normal ~what:"a" { Normal.mu = Float.nan; sigma = 1.0 }));
  Alcotest.(check (list string)) "negative sigma" [ "negative-sigma" ]
    (rules (Invariant.check_normal ~what:"a" { Normal.mu = 0.0; sigma = -1.0 }))

let test_check_interval () =
  Alcotest.(check (list string)) "ordered" []
    (rules (Invariant.check_interval ~what:"w" (0.0, 1.0)));
  Alcotest.(check (list string)) "inverted" [ "inverted-interval" ]
    (rules (Invariant.check_interval ~what:"w" (1.0, 0.0)))

let test_check_cdf () =
  Alcotest.(check (list string)) "monotone" []
    (rules (Invariant.check_cdf ~what:"F" [| 0.0; 0.4; 1.0 |]));
  Alcotest.(check bool) "non-monotone flagged" true
    (List.mem "non-monotone-cdf" (rules (Invariant.check_cdf ~what:"F" [| 0.0; 0.5; 0.4 |])))

let test_mass_conserved () =
  Alcotest.(check bool) "exact" true
    (Invariant.mass_conserved ~expected:1.0 ~total:1.0 ~dropped:0.0 ());
  Alcotest.(check bool) "within dropped" true
    (Invariant.mass_conserved ~expected:1.0 ~total:0.99 ~dropped:0.02 ());
  Alcotest.(check bool) "lost more than dropped" false
    (Invariant.mass_conserved ~expected:1.0 ~total:0.9 ~dropped:1e-6 ());
  Alcotest.(check bool) "mass appeared" false
    (Invariant.mass_conserved ~expected:1.0 ~total:1.1 ~dropped:0.0 ());
  Alcotest.(check (list string)) "issue rule" [ "mass-conservation" ]
    (rules (Invariant.check_mass_conservation ~what:"t.o.p." ~expected:1.0 ~total:0.5 ~dropped:0.0))

(* ---------- QCheck: Discrete operations vs the sanitizer invariant ---------- *)

(* a random sub-probability mass function on a random grid *)
let dist_arb =
  QCheck.map
    (fun (mu, sigma, mass, dt) -> Discrete.of_normal ~dt ~mass (Normal.make ~mu ~sigma))
    QCheck.(
      quad (float_range (-2.0) 2.0) (float_range 0.1 1.5) (float_range 0.05 1.0)
        (float_range 0.02 0.3))

let healthy what d = Invariant.check_discrete ~what d = []

let conserves what ~expected d =
  healthy what d
  && Invariant.mass_conserved ~expected ~total:(Discrete.total d)
       ~dropped:(Discrete.dropped_mass d) ()

let prop_of_normal_healthy =
  QCheck.Test.make ~name:"of_normal is a healthy sub-probability" ~count:200 dist_arb
    (fun d -> conserves "of_normal" ~expected:(Discrete.total d) d)

let prop_scale_conserves =
  QCheck.Test.make ~name:"scale conserves mass" ~count:200
    QCheck.(pair dist_arb (float_range 0.0 1.0))
    (fun (d, w) ->
      let s = Discrete.scale d w in
      conserves "scale" ~expected:(w *. Discrete.total d) s)

let prop_truncate_tracks_dropped =
  QCheck.Test.make ~name:"truncate moves mass into the dropped bound" ~count:200
    QCheck.(pair dist_arb (float_range 1e-9 1e-3))
    (fun (d, eps) ->
      let t = Discrete.truncate ~eps d in
      conserves "truncate" ~expected:(Discrete.total d) t)

let prop_detects_corruption =
  (* Discrete's constructors refuse negative masses outright, so the
     reachable corruption is mass appearing from nowhere: a WEIGHTED SUM
     whose weights sum above 1 — exactly the bug class the sanitizer's
     total <= 1 check exists for *)
  QCheck.Test.make ~name:"check_discrete flags super-unit mass" ~count:100
    (QCheck.map
       (fun (mu, sigma, mass) ->
         Discrete.of_normal ~dt:0.1 ~mass (Normal.make ~mu ~sigma))
       QCheck.(triple (float_range (-2.0) 2.0) (float_range 0.1 1.5) (float_range 0.7 1.0)))
    (fun d ->
      let corrupted = Discrete.add d d in
      List.exists
        (fun (i : Invariant.issue) -> i.Invariant.rule = "probability-range")
        (Invariant.check_discrete ~what:"corrupted" corrupted)
      || Invariant.check_discrete ~what:"corrupted" corrupted <> [])

(* pairwise operations require a shared grid, so the binary properties
   pin dt instead of drawing it *)
let pinned_dt = 0.1

let pinned_arb =
  QCheck.map
    (fun (mu, sigma, mass) -> Discrete.of_normal ~dt:pinned_dt ~mass (Normal.make ~mu ~sigma))
    QCheck.(triple (float_range (-2.0) 2.0) (float_range 0.1 1.5) (float_range 0.05 1.0))

let prop_add_conserves_pinned =
  QCheck.Test.make ~name:"add conserves mass (shared grid)" ~count:200
    QCheck.(triple pinned_arb pinned_arb (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (a, b, (wa, u)) ->
      (* convex weights, as in the analyzer's WEIGHTED SUM: wa + wb <= 1 *)
      let wb = (1.0 -. wa) *. u in
      let s = Discrete.add (Discrete.scale a wa) (Discrete.scale b wb) in
      conserves "add" ~expected:((wa *. Discrete.total a) +. (wb *. Discrete.total b)) s)

let prop_max_min_conserve_pinned =
  QCheck.Test.make ~name:"max/min return unit mass (shared grid)" ~count:200
    QCheck.(pair pinned_arb pinned_arb)
    (fun (a, b) ->
      (* max/min normalize their operands: the result is a unit-mass
         distribution whose dropped bound carries the relative truncation *)
      let mx = Discrete.max_independent a b and mn = Discrete.min_independent a b in
      conserves "max" ~expected:1.0 mx && conserves "min" ~expected:1.0 mn)

let prop_convolve_conserves =
  QCheck.Test.make ~name:"convolve conserves product mass (SUM)" ~count:200
    QCheck.(pair pinned_arb pinned_arb)
    (fun (a, b) ->
      let s = Discrete.convolve a b in
      (* convolution touches every bin pair; allow the slightly larger
         float slack that entails *)
      healthy "convolve" s
      && Invariant.mass_conserved ~tol:1e-5
           ~expected:(Discrete.total a *. Discrete.total b)
           ~total:(Discrete.total s) ~dropped:(Discrete.dropped_mass s) ())

let suite =
  [
    Alcotest.test_case "finite" `Quick test_finite;
    Alcotest.test_case "check_finite" `Quick test_check_finite;
    Alcotest.test_case "check_nonnegative" `Quick test_check_nonnegative;
    Alcotest.test_case "check_prob" `Quick test_check_prob;
    Alcotest.test_case "check_prob_sum" `Quick test_check_prob_sum;
    Alcotest.test_case "check_normal" `Quick test_check_normal;
    Alcotest.test_case "check_interval" `Quick test_check_interval;
    Alcotest.test_case "check_cdf" `Quick test_check_cdf;
    Alcotest.test_case "mass_conserved" `Quick test_mass_conserved;
    QCheck_alcotest.to_alcotest prop_of_normal_healthy;
    QCheck_alcotest.to_alcotest prop_scale_conserves;
    QCheck_alcotest.to_alcotest prop_truncate_tracks_dropped;
    QCheck_alcotest.to_alcotest prop_detects_corruption;
    QCheck_alcotest.to_alcotest prop_add_conserves_pinned;
    QCheck_alcotest.to_alcotest prop_max_min_conserve_pinned;
    QCheck_alcotest.to_alcotest prop_convolve_conserves;
  ]
