(* Static checker: one test per rule in the catalogue, on hand-built
   defective circuits (or netlist files for the defects the Builder
   refuses to finalize), plus reporting/exit-code conventions and a
   clean-circuit pass over the bundled benchmark suite. *)

module Lint = Spsta_lint.Lint
module Circuit = Spsta_netlist.Circuit
module Cell_library = Spsta_netlist.Cell_library
module Gate_kind = Spsta_logic.Gate_kind
module Input_spec = Spsta_sim.Input_spec
module Normal = Spsta_dist.Normal

let rules_of findings = List.map (fun f -> f.Lint.rule) findings

let has_rule rule findings = List.mem rule (rules_of findings)

let check_rule name rule findings =
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s (got: %s)" name rule
       (String.concat ", " (rules_of findings)))
    true (has_rule rule findings)

let check_no_rule name rule findings =
  Alcotest.(check bool) (Printf.sprintf "%s does not report %s" name rule) false
    (has_rule rule findings)

let find_rule rule findings = List.find (fun f -> f.Lint.rule = rule) findings

(* Reference circuit with one of each warning-level structural defect:
   q is a self-looped flip-flop, dup doubles an input, dangle drives
   nothing, dead feeds only dangling logic, unused drives nothing. *)
let build_defective () =
  let b = Circuit.Builder.create ~name:"defective" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "unused";
  Circuit.Builder.add_dff b ~q:"q" ~d:"q";
  Circuit.Builder.add_gate b ~output:"dup" Gate_kind.And [ "a"; "a" ];
  Circuit.Builder.add_gate b ~output:"dead" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"dangle" Gate_kind.Not [ "dead" ];
  Circuit.Builder.add_gate b ~output:"po" Gate_kind.Or [ "a"; "dup" ];
  Circuit.Builder.add_output b "po";
  Circuit.Builder.finalize b

let build_clean () =
  let b = Circuit.Builder.create ~name:"clean" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let with_bench_file content f =
  let path = Filename.temp_file "lint" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

(* ---------- structural rules ---------- *)

let test_clean_circuit () =
  Alcotest.(check (list string)) "no findings" [] (rules_of (Lint.check_structure (build_clean ())))

let test_dff_self_loop () =
  let findings = Lint.check_structure (build_defective ()) in
  check_rule "self-looped dff" "dff-self-loop" findings;
  Alcotest.(check (list string)) "names q" [ "q" ] (find_rule "dff-self-loop" findings).Lint.nets

let test_duplicate_fanin () =
  let findings = Lint.check_structure (build_defective ()) in
  check_rule "doubled input" "duplicate-fanin" findings;
  Alcotest.(check (list string)) "names gate and input" [ "dup"; "a" ]
    (find_rule "duplicate-fanin" findings).Lint.nets

let test_dangling_net () =
  let findings = Lint.check_structure (build_defective ()) in
  check_rule "fanout-free gate" "dangling-net" findings;
  Alcotest.(check (list string)) "names dangle" [ "dangle" ]
    (find_rule "dangling-net" findings).Lint.nets

let test_dead_logic () =
  let findings = Lint.check_structure (build_defective ()) in
  check_rule "gate feeding only dangling logic" "dead-logic" findings;
  Alcotest.(check (list string)) "names dead" [ "dead" ]
    (find_rule "dead-logic" findings).Lint.nets

let test_unused_input () =
  let findings = Lint.check_structure (build_defective ()) in
  check_rule "input driving nothing" "unused-input" findings;
  Alcotest.(check (list string)) "names unused" [ "unused" ]
    (find_rule "unused-input" findings).Lint.nets

let test_high_fanin () =
  let b = Circuit.Builder.create () in
  let inputs = List.init 7 (fun i -> Printf.sprintf "i%d" i) in
  List.iter (Circuit.Builder.add_input b) inputs;
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And inputs;
  Circuit.Builder.add_output b "y";
  let findings = Lint.check_structure (Circuit.Builder.finalize b) in
  check_rule "7-input AND" "high-fanin" findings;
  (* at the threshold itself there is no finding *)
  let b = Circuit.Builder.create () in
  let inputs = List.init 6 (fun i -> Printf.sprintf "i%d" i) in
  List.iter (Circuit.Builder.add_input b) inputs;
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And inputs;
  Circuit.Builder.add_output b "y";
  check_no_rule "6-input AND" "high-fanin" (Lint.check_structure (Circuit.Builder.finalize b))

let test_no_endpoints () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Not [ "a" ];
  let findings = Lint.check_structure (Circuit.Builder.finalize b) in
  check_rule "output-free circuit" "no-endpoints" findings

let test_no_sources_unrepresentable () =
  (* every finalized net chain bottoms out at an input or flip-flop, so
     a non-empty circuit always has a source; the rule exists for
     circuits built by future front ends and must stay quiet here *)
  check_no_rule "defective circuit still has sources" "no-sources"
    (Lint.check_structure (build_defective ()))

(* ---------- builder rejections via lint_path ---------- *)

let test_undriven_net () =
  with_bench_file "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n" (fun path ->
      let findings = Lint.lint_path path in
      check_rule "ghost input" "undriven-net" findings;
      Alcotest.(check int) "exit 3" 3 (Lint.exit_code findings))

let test_multiply_driven_net () =
  with_bench_file "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = AND(a, a)\n" (fun path ->
      check_rule "two drivers" "multiply-driven-net" (Lint.lint_path path))

let test_combinational_cycle () =
  with_bench_file "INPUT(a)\nOUTPUT(y)\nx = AND(a, y)\ny = AND(a, x)\n" (fun path ->
      let findings = Lint.lint_path path in
      check_rule "loop" "combinational-cycle" findings;
      let f = find_rule "combinational-cycle" findings in
      let contains sub s =
        let n = String.length sub and len = String.length s in
        let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the cycle nets" true
        (contains "x" f.Lint.message && contains "y" f.Lint.message))

let test_arity_mismatch () =
  with_bench_file "INPUT(a)\nOUTPUT(y)\ny = AND(a)\n" (fun path ->
      check_rule "1-input AND" "arity-mismatch" (Lint.lint_path path))

let test_parse_error () =
  with_bench_file "INPUT(a)\nthis is not bench syntax\n" (fun path ->
      check_rule "garbage line" "parse-error" (Lint.lint_path path))

let test_io_error () =
  let findings = Lint.lint_path "/nonexistent/no/such/file.bench" in
  check_rule "missing file" "io-error" findings;
  Alcotest.(check int) "exit 3" 3 (Lint.exit_code findings)

let test_invalid_circuit_fallback () =
  (* every current Builder rejection classifies to a specific rule; the
     fallback must still be a catalogued Error rule *)
  match List.find_opt (fun (r, _, _) -> r = "invalid-circuit") Lint.rules with
  | Some (_, severity, _) ->
    Alcotest.(check string) "fallback severity" "error" (Lint.severity_name severity)
  | None -> Alcotest.fail "invalid-circuit missing from catalogue"

(* ---------- cell library rules ---------- *)

let test_lib_invalid_delay () =
  (* NaN slips past Cell_library.make's negativity check; lint catches it *)
  let library =
    Cell_library.make
      ~base:(fun _ -> Float.nan)
      ~per_input:(fun _ -> 0.0)
      ~rise_fall_skew:(fun _ -> 0.0)
  in
  check_rule "NaN base delay" "lib-invalid-delay" (Lint.check_library library (build_clean ()))

let test_lib_zero_delay () =
  let library =
    Cell_library.make
      ~base:(fun _ -> 0.0)
      ~per_input:(fun _ -> 0.0)
      ~rise_fall_skew:(fun _ -> 0.0)
  in
  check_rule "zero delay" "lib-zero-delay" (Lint.check_library library (build_clean ()));
  check_no_rule "unit delay clean" "lib-zero-delay"
    (Lint.check_library Cell_library.unit_delay (build_clean ()))

(* ---------- size-group rule ---------- *)

let test_size_group_clean () =
  (* the generated families obey the laws by construction *)
  let module Sized = Spsta_netlist.Sized_library in
  Alcotest.(check (list string)) "default family clean" []
    (rules_of (Lint.check_sized_library Sized.default (build_clean ())));
  Alcotest.(check (list string)) "steep family clean" []
    (rules_of
       (Lint.check_sized_library (Sized.family ~sizes:6 ~ratio:3.0 Cell_library.default)
          (build_clean ())))

(* gate-free circuit: no (kind, fan-in) pair is instantiated *)
let build_no_gates () =
  let b = Circuit.Builder.create ~name:"wires" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_dff b ~q:"q" ~d:"a";
  Circuit.Builder.add_output b "q";
  Circuit.Builder.finalize b

let test_size_group_violations () =
  let module Sized = Spsta_netlist.Sized_library in
  (* a custom delay hook that *grows* with drive strength breaks the
     delay law; a shrinking area hook breaks the area law *)
  let slower =
    Sized.make ~delay_scale:(fun ~drive -> drive) ~drives:[| 1.0; 2.0 |] Cell_library.default
  in
  let findings = Lint.check_sized_library slower (build_clean ()) in
  check_rule "increasing delay" "size-group" findings;
  Alcotest.(check bool) "size-group is an error" true (Lint.has_errors findings);
  let shrinking =
    Sized.make ~area_scale:(fun ~drive -> 1.0 /. drive) ~drives:[| 1.0; 2.0 |]
      Cell_library.default
  in
  check_rule "shrinking area" "size-group" (Lint.check_sized_library shrinking (build_clean ()));
  let nan_cap =
    Sized.make ~cap_scale:(fun ~drive -> if drive > 1.0 then Float.nan else 1.0)
      ~drives:[| 1.0; 2.0 |] Cell_library.default
  in
  check_rule "non-finite capacitance" "size-group"
    (Lint.check_sized_library nan_cap (build_clean ()));
  (* only instantiated (kind, fan-in) pairs are audited: a circuit that
     never uses the broken variant stays clean *)
  check_no_rule "uninstantiated pairs not audited" "size-group"
    (Lint.check_sized_library slower (build_no_gates ()))

(* ---------- input statistics rules ---------- *)

let bad_prob_spec =
  { Input_spec.case_i with Input_spec.p_zero = 0.6; p_one = 0.6; p_rise = 0.0; p_fall = 0.0 }

let bad_arrival_spec =
  { Input_spec.case_i with
    Input_spec.rise_arrival = { Normal.mu = Float.nan; sigma = 1.0 } }

let test_spec_probability () =
  let findings = Lint.check_spec ~spec:(fun _ -> bad_prob_spec) (build_clean ()) in
  check_rule "sum 1.2" "spec-probability" findings;
  check_no_rule "valid case_i" "spec-probability"
    (Lint.check_spec ~spec:(fun _ -> Input_spec.case_i) (build_clean ()))

let test_spec_arrival () =
  let findings = Lint.check_spec ~spec:(fun _ -> bad_arrival_spec) (build_clean ()) in
  check_rule "NaN arrival mean" "spec-arrival" findings

(* ---------- grid rules ---------- *)

let test_grid_dt () =
  check_rule "dt = 0" "grid-dt" (Lint.check_grid ~dt:0.0 ~truncate_eps:1e-9 (build_clean ()))

let test_grid_eps () =
  check_rule "eps >= 1" "grid-eps" (Lint.check_grid ~dt:0.1 ~truncate_eps:1.5 (build_clean ()))

let test_grid_error_bound () =
  let c = build_clean () in
  check_rule "fat eps" "grid-error-bound" (Lint.check_grid ~dt:0.1 ~truncate_eps:1e-3 c);
  check_no_rule "tight eps" "grid-error-bound" (Lint.check_grid ~dt:0.1 ~truncate_eps:1e-9 c)

let test_grid_dt_coarse () =
  let c = build_clean () in
  let spec _ = Input_spec.case_i in
  check_rule "dt above sigma" "grid-dt-coarse"
    (Lint.check_grid ~spec ~dt:2.0 ~truncate_eps:1e-9 c);
  check_no_rule "dt below sigma" "grid-dt-coarse"
    (Lint.check_grid ~spec ~dt:0.1 ~truncate_eps:1e-9 c)

(* ---------- reporting ---------- *)

let test_every_finding_rule_catalogued () =
  let catalogue = List.map (fun (r, _, _) -> r) Lint.rules in
  let findings =
    Lint.check_circuit ~library:Cell_library.unit_delay
      ~spec:(fun _ -> bad_prob_spec)
      ~grid:(2.0, 1e-3) (build_defective ())
  in
  Alcotest.(check bool) "non-empty" true (findings <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f.Lint.rule ^ " catalogued") true (List.mem f.Lint.rule catalogue))
    findings

let test_exit_codes () =
  let error = [ List.hd (Lint.check_grid ~dt:0.0 ~truncate_eps:1e-9 (build_clean ())) ] in
  let warning = Lint.check_structure (build_defective ()) in
  Alcotest.(check int) "errors exit 3" 3 (Lint.exit_code error);
  Alcotest.(check int) "warnings exit 0" 0 (Lint.exit_code warning);
  Alcotest.(check int) "warnings strict exit 4" 4 (Lint.exit_code ~strict:true warning);
  Alcotest.(check int) "clean exit 0" 0 (Lint.exit_code []);
  Alcotest.(check int) "clean strict exit 0" 0 (Lint.exit_code ~strict:true [])

let test_counts () =
  let findings = Lint.check_structure (build_defective ()) in
  Alcotest.(check int) "no errors" 0 (Lint.count Lint.Error findings);
  Alcotest.(check bool) "warnings present" true (Lint.count Lint.Warning findings > 0);
  Alcotest.(check bool) "has_errors false" false (Lint.has_errors findings)

let test_render_text () =
  let findings = Lint.check_structure (build_defective ()) in
  let text = Lint.render_text findings in
  Alcotest.(check bool) "mentions rule tag" true
    (String.length text > 0
    &&
    let contains sub s =
      let n = String.length sub and len = String.length s in
      let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    contains "[dangling-net]" text);
  Alcotest.(check string) "empty findings render empty" "" (Lint.render_text [])

let test_json_output () =
  let findings = Lint.check_structure (build_defective ()) in
  let json = Lint.json_of_findings ~subject:"defective" findings in
  (* must be valid JSON with the expected shape: reuse the server codec *)
  match Spsta_server.Json.of_string json with
  | Spsta_server.Json.Obj fields ->
    let member name = List.assoc_opt name fields in
    Alcotest.(check bool) "subject" true (member "subject" = Some (Spsta_server.Json.Str "defective"));
    (match member "findings" with
    | Some (Spsta_server.Json.List items) ->
      Alcotest.(check int) "one JSON object per finding" (List.length findings)
        (List.length items)
    | _ -> Alcotest.fail "findings must be a JSON array");
    (match member "warnings" with
    | Some (Spsta_server.Json.Num n) ->
      Alcotest.(check int) "warning count" (Lint.count Lint.Warning findings) (int_of_float n)
    | _ -> Alcotest.fail "warnings must be a number")
  | _ -> Alcotest.fail "lint --json must emit a JSON object"

let test_suite_benchmarks_clean () =
  (* the bundled suite must lint without Error findings (warnings are
     expected in the synthetic netlists) *)
  List.iter
    (fun name ->
      let circuit = Spsta_experiments.Benchmarks.load name in
      let findings =
        Lint.check_circuit ~library:Cell_library.unit_delay
          ~spec:(fun _ -> Input_spec.case_i)
          ~grid:(0.1, 1e-9) circuit
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s has no Error findings" name)
        false (Lint.has_errors findings))
    ("c17" :: "s27" :: Spsta_experiments.Benchmarks.evaluated_names)

let suite =
  [
    Alcotest.test_case "clean circuit has no findings" `Quick test_clean_circuit;
    Alcotest.test_case "dff-self-loop" `Quick test_dff_self_loop;
    Alcotest.test_case "duplicate-fanin" `Quick test_duplicate_fanin;
    Alcotest.test_case "dangling-net" `Quick test_dangling_net;
    Alcotest.test_case "dead-logic" `Quick test_dead_logic;
    Alcotest.test_case "unused-input" `Quick test_unused_input;
    Alcotest.test_case "high-fanin" `Quick test_high_fanin;
    Alcotest.test_case "no-endpoints" `Quick test_no_endpoints;
    Alcotest.test_case "no-sources never fires on built circuits" `Quick
      test_no_sources_unrepresentable;
    Alcotest.test_case "undriven-net via file" `Quick test_undriven_net;
    Alcotest.test_case "multiply-driven-net via file" `Quick test_multiply_driven_net;
    Alcotest.test_case "combinational-cycle via file names nets" `Quick test_combinational_cycle;
    Alcotest.test_case "arity-mismatch via file" `Quick test_arity_mismatch;
    Alcotest.test_case "parse-error" `Quick test_parse_error;
    Alcotest.test_case "io-error" `Quick test_io_error;
    Alcotest.test_case "invalid-circuit fallback catalogued" `Quick test_invalid_circuit_fallback;
    Alcotest.test_case "lib-invalid-delay" `Quick test_lib_invalid_delay;
    Alcotest.test_case "lib-zero-delay" `Quick test_lib_zero_delay;
    Alcotest.test_case "size-group clean families" `Quick test_size_group_clean;
    Alcotest.test_case "size-group violations" `Quick test_size_group_violations;
    Alcotest.test_case "spec-probability" `Quick test_spec_probability;
    Alcotest.test_case "spec-arrival" `Quick test_spec_arrival;
    Alcotest.test_case "grid-dt" `Quick test_grid_dt;
    Alcotest.test_case "grid-eps" `Quick test_grid_eps;
    Alcotest.test_case "grid-error-bound" `Quick test_grid_error_bound;
    Alcotest.test_case "grid-dt-coarse" `Quick test_grid_dt_coarse;
    Alcotest.test_case "all findings catalogued" `Quick test_every_finding_rule_catalogued;
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "severity counts" `Quick test_counts;
    Alcotest.test_case "text rendering" `Quick test_render_text;
    Alcotest.test_case "json rendering round-trips" `Quick test_json_output;
    Alcotest.test_case "bundled suite lints without errors" `Quick test_suite_benchmarks_clean;
  ]
