module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Monte_carlo = Spsta_sim.Monte_carlo
module Input_spec = Spsta_sim.Input_spec
module Stats = Spsta_util.Stats

(* a small tree (no reconvergent fanout): independence assumptions hold
   exactly, so MC must converge to the analytic values *)
let tree_circuit () =
  let b = Circuit.Builder.create ~name:"tree" () in
  List.iter (Circuit.Builder.add_input b) [ "a"; "b"; "c"; "d" ];
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Or [ "c"; "d" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Nand [ "n1"; "n2" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let test_probabilities_converge () =
  let c = tree_circuit () in
  let r = Monte_carlo.simulate ~runs:40_000 ~seed:5 c ~spec:(fun _ -> Input_spec.case_i) in
  let n1 = Monte_carlo.stats r (Circuit.find_exn c "n1") in
  (* AND of two case-I inputs: P1 = 1/16, Pr = Pf = (1/4)^2... via eq 10:
     P1 = .25^2 = .0625; Pr = (.25+.25)^2 - .0625 = .1875 *)
  Alcotest.(check bool) "P1 near 1/16" true (Float.abs (Monte_carlo.p_one n1 -. 0.0625) < 0.01);
  Alcotest.(check bool) "Pr near 3/16" true (Float.abs (Monte_carlo.p_rise n1 -. 0.1875) < 0.01);
  Alcotest.(check bool) "Pf near 3/16" true (Float.abs (Monte_carlo.p_fall n1 -. 0.1875) < 0.01);
  Alcotest.(check bool) "probabilities sum to 1" true
    (Float.abs
       (Monte_carlo.p_zero n1 +. Monte_carlo.p_one n1 +. Monte_carlo.p_rise n1
        +. Monte_carlo.p_fall n1
       -. 1.0)
    < 1e-9)

let test_determinism () =
  let c = tree_circuit () in
  let a = Monte_carlo.simulate ~runs:500 ~seed:9 c ~spec:(fun _ -> Input_spec.case_i) in
  let b = Monte_carlo.simulate ~runs:500 ~seed:9 c ~spec:(fun _ -> Input_spec.case_i) in
  let y = Circuit.find_exn c "y" in
  Alcotest.(check int) "same rise counts" (Monte_carlo.stats a y).Monte_carlo.count_rise
    (Monte_carlo.stats b y).Monte_carlo.count_rise;
  let c2 = Monte_carlo.simulate ~runs:500 ~seed:10 c ~spec:(fun _ -> Input_spec.case_i) in
  Alcotest.(check bool) "different seed differs somewhere" true
    ((Monte_carlo.stats a y).Monte_carlo.count_rise <> (Monte_carlo.stats c2 y).Monte_carlo.count_rise
    || (Monte_carlo.stats a y).Monte_carlo.count_fall <> (Monte_carlo.stats c2 y).Monte_carlo.count_fall)

let test_run_count () =
  let c = tree_circuit () in
  let r = Monte_carlo.simulate ~runs:123 ~seed:1 c ~spec:(fun _ -> Input_spec.case_ii) in
  Alcotest.(check int) "runs recorded" 123 r.Monte_carlo.runs;
  let s = Monte_carlo.stats r (Circuit.find_exn c "y") in
  Alcotest.(check int) "counts total runs" 123
    (s.Monte_carlo.count_zero + s.Monte_carlo.count_one + s.Monte_carlo.count_rise
   + s.Monte_carlo.count_fall)

let test_arrival_times_of_buffer () =
  (* a single buffer: output arrival = input arrival + 1, so the observed
     rise-time mean must be ~1 and stddev ~1 under case I *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let r = Monte_carlo.simulate ~runs:40_000 ~seed:11 c ~spec:(fun _ -> Input_spec.case_i) in
  let s = Monte_carlo.stats r (Circuit.find_exn c "y") in
  Alcotest.(check bool) "mean ~ 1" true
    (Float.abs (Stats.acc_mean s.Monte_carlo.rise_times -. 1.0) < 0.03);
  Alcotest.(check bool) "stddev ~ 1" true
    (Float.abs (Stats.acc_stddev s.Monte_carlo.rise_times -. 1.0) < 0.03)

let test_signal_probability_accessor () =
  let c = tree_circuit () in
  let r = Monte_carlo.simulate ~runs:20_000 ~seed:13 c ~spec:(fun _ -> Input_spec.case_i) in
  let a = Monte_carlo.stats r (Circuit.find_exn c "a") in
  Alcotest.(check bool) "source SP near 0.5" true
    (Float.abs (Monte_carlo.signal_probability a -. 0.5) < 0.01);
  Alcotest.(check bool) "source toggling rate near 0.5" true
    (Float.abs (Monte_carlo.toggling_rate a -. 0.5) < 0.01)

let suite =
  [
    Alcotest.test_case "probabilities converge" `Slow test_probabilities_converge;
    Alcotest.test_case "determinism by seed" `Quick test_determinism;
    Alcotest.test_case "run counting" `Quick test_run_count;
    Alcotest.test_case "buffer arrival times" `Slow test_arrival_times_of_buffer;
    Alcotest.test_case "signal probability accessor" `Quick test_signal_probability_accessor;
  ]

let test_merge () =
  let c = tree_circuit () in
  let a = Monte_carlo.simulate ~runs:400 ~seed:1 c ~spec:(fun _ -> Input_spec.case_i) in
  let b = Monte_carlo.simulate ~runs:600 ~seed:2 c ~spec:(fun _ -> Input_spec.case_i) in
  let m = Monte_carlo.merge a b in
  Alcotest.(check int) "runs add" 1000 m.Monte_carlo.runs;
  let y = Circuit.find_exn c "y" in
  let sa = Monte_carlo.stats a y and sb = Monte_carlo.stats b y and sm = Monte_carlo.stats m y in
  Alcotest.(check int) "rise counts add" (sa.Monte_carlo.count_rise + sb.Monte_carlo.count_rise)
    sm.Monte_carlo.count_rise;
  (* merged mean equals the weighted mean of the shards *)
  let wa = float_of_int (Stats.acc_count sa.Monte_carlo.rise_times) in
  let wb = float_of_int (Stats.acc_count sb.Monte_carlo.rise_times) in
  let expected =
    ((wa *. Stats.acc_mean sa.Monte_carlo.rise_times)
    +. (wb *. Stats.acc_mean sb.Monte_carlo.rise_times))
    /. (wa +. wb)
  in
  Alcotest.(check (float 1e-9)) "merged mean" expected (Stats.acc_mean sm.Monte_carlo.rise_times)

let test_parallel_matches_sequential_statistics () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  let p = Monte_carlo.simulate_parallel ~runs:20_000 ~domains:4 ~seed:5 c ~spec in
  Alcotest.(check int) "all runs executed" 20_000 p.Monte_carlo.runs;
  let s = Monte_carlo.simulate ~runs:20_000 ~seed:5 c ~spec in
  let y = Circuit.find_exn c "y" in
  let sp = Monte_carlo.stats p y and ss = Monte_carlo.stats s y in
  (* trial [i] always draws from stream [i] and the chunk reduction tree
     is fixed, so the parallel result IS the sequential one, bit for bit *)
  Alcotest.(check int) "rise counts equal" ss.Monte_carlo.count_rise sp.Monte_carlo.count_rise;
  Alcotest.(check (float 0.0)) "rise mean equal" (Stats.acc_mean ss.Monte_carlo.rise_times)
    (Stats.acc_mean sp.Monte_carlo.rise_times);
  Alcotest.(check (float 0.0)) "rise m2 equal" ss.Monte_carlo.rise_times.Stats.m2
    sp.Monte_carlo.rise_times.Stats.m2

let test_parallel_deterministic () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  let a = Monte_carlo.simulate_parallel ~runs:2000 ~domains:3 ~seed:9 c ~spec in
  let b = Monte_carlo.simulate_parallel ~runs:2000 ~domains:3 ~seed:9 c ~spec in
  let y = Circuit.find_exn c "y" in
  let sa = Monte_carlo.stats a y and sb = Monte_carlo.stats b y in
  (* fixed (seed, domains) must reproduce the exact stream: counts and
     accumulated moments bit-identical, not merely statistically close *)
  Alcotest.(check int) "same rise counts" sa.Monte_carlo.count_rise sb.Monte_carlo.count_rise;
  Alcotest.(check int) "same fall counts" sa.Monte_carlo.count_fall sb.Monte_carlo.count_fall;
  Alcotest.(check (float 0.0)) "same rise mean" (Stats.acc_mean sa.Monte_carlo.rise_times)
    (Stats.acc_mean sb.Monte_carlo.rise_times);
  Alcotest.(check (float 0.0)) "same fall mean" (Stats.acc_mean sa.Monte_carlo.fall_times)
    (Stats.acc_mean sb.Monte_carlo.fall_times)

(* an odd run count must still be fully covered by the chunk ranges *)
let test_parallel_shards_cover_runs () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  let p = Monte_carlo.simulate_parallel ~runs:1999 ~domains:4 ~seed:3 c ~spec in
  Alcotest.(check int) "odd run count fully covered" 1999 p.Monte_carlo.runs;
  let y = Circuit.find_exn c "y" in
  let s = Monte_carlo.stats p y in
  Alcotest.(check bool) "no shard lost transitions" true
    (s.Monte_carlo.count_rise + s.Monte_carlo.count_fall <= 1999
    && s.Monte_carlo.count_rise > 0)

(* the packed engine must equal the scalar oracle exactly: all counts,
   and the Welford accumulators bit for bit *)
let check_results_equal label (a : Monte_carlo.result) (b : Monte_carlo.result) =
  Alcotest.(check int) (label ^ ": runs") a.Monte_carlo.runs b.Monte_carlo.runs;
  Array.iteri
    (fun i (x : Monte_carlo.net_stats) ->
      let y = b.Monte_carlo.per_net.(i) in
      if
        x.Monte_carlo.count_zero <> y.Monte_carlo.count_zero
        || x.Monte_carlo.count_one <> y.Monte_carlo.count_one
        || x.Monte_carlo.count_rise <> y.Monte_carlo.count_rise
        || x.Monte_carlo.count_fall <> y.Monte_carlo.count_fall
      then Alcotest.failf "%s: net %d counts differ" label i;
      let acc_eq (p : Stats.acc) (q : Stats.acc) =
        p.Stats.n = q.Stats.n && p.Stats.mu = q.Stats.mu && p.Stats.m2 = q.Stats.m2
        && p.Stats.lo = q.Stats.lo && p.Stats.hi = q.Stats.hi
      in
      if not (acc_eq x.Monte_carlo.rise_times y.Monte_carlo.rise_times) then
        Alcotest.failf "%s: net %d rise accumulators differ" label i;
      if not (acc_eq x.Monte_carlo.fall_times y.Monte_carlo.fall_times) then
        Alcotest.failf "%s: net %d fall accumulators differ" label i)
    a.Monte_carlo.per_net

let test_engines_bit_identical () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_ii in
  (* 1300 runs: full chunks, a partial chunk, and partial 64-lane blocks *)
  let run engine = Monte_carlo.simulate ~runs:1300 ~engine ~seed:21 c ~spec in
  check_results_equal "plain" (run `Scalar) (run `Packed);
  let run_sigma engine =
    let mis = Spsta_logic.Mis_model.make ~max_slowdown:0.25 ~min_speedup:0.2 () in
    Monte_carlo.simulate ~delay_sigma:0.2 ~mis ~runs:700 ~engine ~seed:23 c ~spec
  in
  check_results_equal "sigma+mis" (run_sigma `Scalar) (run_sigma `Packed)

let test_domains_independence () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  let base = Monte_carlo.simulate ~runs:2100 ~seed:31 c ~spec in
  List.iter
    (fun domains ->
      check_results_equal
        (Printf.sprintf "domains=%d" domains)
        base
        (Monte_carlo.simulate ~runs:2100 ~domains ~seed:31 c ~spec))
    [ 2; 3; 5 ]

let test_merge_zero_runs () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  let some = Monte_carlo.simulate ~runs:300 ~seed:3 c ~spec in
  let none = Monte_carlo.simulate ~runs:0 ~seed:3 c ~spec in
  Alcotest.(check int) "zero-run result" 0 none.Monte_carlo.runs;
  let y = Circuit.find_exn c "y" in
  let sn = Monte_carlo.stats none y in
  (* the pre-fix ratio helpers divided by n_runs = 0 here *)
  Alcotest.(check (float 0.0)) "p_rise of empty" 0.0 (Monte_carlo.p_rise sn);
  Alcotest.(check (float 0.0)) "SP of empty" 0.0 (Monte_carlo.signal_probability sn);
  Alcotest.(check (float 0.0)) "toggling of empty" 0.0 (Monte_carlo.toggling_rate sn);
  (* merging with an empty side is the identity, bit for bit *)
  check_results_equal "empty on the right" some (Monte_carlo.merge some none);
  check_results_equal "empty on the left" some (Monte_carlo.merge none some);
  match Monte_carlo.simulate ~runs:(-1) ~seed:3 c ~spec with
  | _ -> Alcotest.fail "negative runs accepted"
  | exception Invalid_argument _ -> ()

let test_merge_associative_and_exact () =
  let c = tree_circuit () in
  let spec _ = Input_spec.case_i in
  let a = Monte_carlo.simulate ~runs:400 ~seed:1 c ~spec in
  let b = Monte_carlo.simulate ~runs:600 ~seed:2 c ~spec in
  let d = Monte_carlo.simulate ~runs:500 ~seed:3 c ~spec in
  let left = Monte_carlo.merge (Monte_carlo.merge a b) d in
  let right = Monte_carlo.merge a (Monte_carlo.merge b d) in
  Alcotest.(check int) "runs" 1500 left.Monte_carlo.runs;
  let y = Circuit.find_exn c "y" in
  let sl = Monte_carlo.stats left y and sr = Monte_carlo.stats right y in
  (* counts are order-free integers: exactly associative *)
  Alcotest.(check int) "rise counts associative" sl.Monte_carlo.count_rise
    sr.Monte_carlo.count_rise;
  Alcotest.(check int) "fall counts associative" sl.Monte_carlo.count_fall
    sr.Monte_carlo.count_fall;
  (* Welford merging is associative only up to rounding; 1e-12 here *)
  Alcotest.(check (float 1e-12)) "mean associative"
    (Stats.acc_mean sl.Monte_carlo.rise_times)
    (Stats.acc_mean sr.Monte_carlo.rise_times);
  Alcotest.(check (float 1e-12)) "stddev associative"
    (Stats.acc_stddev sl.Monte_carlo.rise_times)
    (Stats.acc_stddev sr.Monte_carlo.rise_times);
  (* min/max are exact in any order *)
  Alcotest.(check (float 0.0)) "lo associative" sl.Monte_carlo.rise_times.Stats.lo
    sr.Monte_carlo.rise_times.Stats.lo;
  Alcotest.(check (float 0.0)) "hi associative" sl.Monte_carlo.rise_times.Stats.hi
    sr.Monte_carlo.rise_times.Stats.hi

let suite =
  suite
  @ [
      Alcotest.test_case "merge" `Quick test_merge;
      Alcotest.test_case "parallel equals sequential" `Slow
        test_parallel_matches_sequential_statistics;
      Alcotest.test_case "parallel determinism" `Quick test_parallel_deterministic;
      Alcotest.test_case "parallel shard coverage" `Quick test_parallel_shards_cover_runs;
      Alcotest.test_case "engines bit-identical" `Quick test_engines_bit_identical;
      Alcotest.test_case "domains independence" `Quick test_domains_independence;
      Alcotest.test_case "merge zero runs" `Quick test_merge_zero_runs;
      Alcotest.test_case "merge associativity" `Quick test_merge_associative_and_exact;
    ]
