(* The optimization layer: criticality calculus on both analysis
   domains, and the greedy sizer — improvement, determinism, target and
   budget semantics, sanitizer-clean runs. *)

module Circuit = Spsta_netlist.Circuit
module Normal = Spsta_dist.Normal
module Sized = Spsta_netlist.Sized_library
module Ssta = Spsta_ssta.Ssta
module Analyzer = Spsta_core.Analyzer
module Criticality = Spsta_opt.Criticality
module Sizer = Spsta_opt.Sizer

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

(* ---------- criticality ---------- *)

let test_criticality_bounds () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let crit = Criticality.of_ssta (Ssta.analyze c) in
  Array.iter
    (fun g ->
      let p = Criticality.criticality crit g in
      if p < 0.0 || p > 1.0 then
        Alcotest.failf "criticality of %s = %g outside [0,1]" (Circuit.net_name c g) p)
    (Circuit.topo_gates c)

let test_criticality_endpoint_split () =
  (* endpoint criticalities are the selection probabilities of the chip
     MAX and sum to 1 — provided no endpoint also feeds other logic
     (an endpoint with fanout additionally accumulates its fanouts'
     contributions, as on the ISCAS netlists).  Dedicated output gates
     with different depths keep the split non-trivial. *)
  let b = Circuit.Builder.create ~name:"split" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"m" Spsta_logic.Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_gate b ~output:"x" Spsta_logic.Gate_kind.Not [ "m" ];
  Circuit.Builder.add_gate b ~output:"y" Spsta_logic.Gate_kind.Or [ "m"; "a" ];
  Circuit.Builder.add_gate b ~output:"z" Spsta_logic.Gate_kind.Not [ "y" ];
  Circuit.Builder.add_output b "x";
  Circuit.Builder.add_output b "z";
  let c = Circuit.Builder.finalize b in
  let crit = Criticality.of_ssta (Ssta.analyze c) in
  let total =
    List.fold_left (fun acc e -> acc +. Criticality.criticality crit e) 0.0
      (Circuit.endpoints c)
  in
  close "endpoint criticalities sum to 1" 1.0 total ~tol:1e-6;
  List.iter
    (fun e ->
      Alcotest.(check bool) "each endpoint selected with positive probability" true
        (Criticality.criticality crit e > 0.0))
    (Circuit.endpoints c)

let test_criticality_ranked () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let crit = Criticality.of_ssta (Ssta.analyze c) in
  let ranked = Criticality.ranked crit in
  Alcotest.(check bool) "ranking is non-empty" true (ranked <> []);
  let rec descending = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && descending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ranking descends" true (descending ranked);
  let top, top_p = List.hd ranked in
  Alcotest.(check bool) "top gate is critical" true (top_p > 0.0);
  (* the most critical gate has the least slack headroom of the ranking *)
  Alcotest.(check bool) "top slack below median slack" true
    (Criticality.slack crit top
    <= Criticality.slack crit (fst (List.nth ranked (List.length ranked / 2))) +. 1e-9)

let test_criticality_single_path () =
  (* a pure chain is critical everywhere: every gate has criticality 1 *)
  let b = Circuit.Builder.create ~name:"chain" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"x" Spsta_logic.Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"y" Spsta_logic.Gate_kind.Buf [ "x" ];
  Circuit.Builder.add_gate b ~output:"z" Spsta_logic.Gate_kind.Not [ "y" ];
  Circuit.Builder.add_output b "z";
  let c = Circuit.Builder.finalize b in
  let crit = Criticality.of_ssta (Ssta.analyze c) in
  Array.iter
    (fun g -> close (Circuit.net_name c g) 1.0 (Criticality.criticality crit g) ~tol:1e-9)
    (Circuit.topo_gates c)

let test_criticality_grid_domain () =
  (* the transition-stats adapter: same circuit through the grid
     backend; chip delay is finite and the ranking non-degenerate *)
  let c = Spsta_experiments.Benchmarks.s27 () in
  let spec = Spsta_experiments.Workloads.spec_fn Spsta_experiments.Workloads.Case_i in
  let module D = Analyzer.Make ((val Spsta_core.Top.discrete_backend ~dt:0.1 ())) in
  let r = D.analyze c ~spec in
  let crit =
    Criticality.of_transition_stats c ~stats:(fun id dir -> D.transition_stats (D.signal r id) dir)
  in
  let chip = Criticality.chip_delay crit in
  Alcotest.(check bool) "chip mean finite" true (Float.is_finite (Normal.mean chip));
  Alcotest.(check bool) "some gate is critical" true
    (List.exists (fun (_, p) -> p > 0.5) (Criticality.ranked crit))

(* ---------- sizer ---------- *)

let small_config = { Sizer.default_config with Sizer.max_moves = 24 }

let test_sizer_improves () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let r = Sizer.run ~config:small_config Sized.default c in
  Alcotest.(check bool) "objective improved" true
    (r.Sizer.objective_after < r.Sizer.objective_before);
  Alcotest.(check bool) "moves committed" true (r.Sizer.moves <> []);
  Alcotest.(check bool) "evaluations counted" true
    (r.Sizer.evaluations >= List.length r.Sizer.moves)

let test_sizer_deterministic () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let a = Sizer.run ~config:small_config Sized.default c in
  let b = Sizer.run ~config:small_config Sized.default c in
  Alcotest.(check bool) "bit-identical reports" true (a = b)

let test_sizer_check_clean () =
  (* the sanitizer must stay silent across every incremental trial *)
  let c = Spsta_experiments.Benchmarks.s27 () in
  let r = Sizer.run ~config:small_config ~check:true Sized.default c in
  Alcotest.(check bool) "checked run improves" true
    (r.Sizer.objective_after <= r.Sizer.objective_before)

let test_sizer_target_stops () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let free = Sizer.run ~config:small_config Sized.default c in
  let target =
    (free.Sizer.objective_before +. free.Sizer.objective_after) /. 2.0
  in
  let r =
    Sizer.run ~config:{ small_config with Sizer.target = Some target } Sized.default c
  in
  Alcotest.(check bool) "target reached" true (r.Sizer.objective_after <= target);
  Alcotest.(check bool) "stops early: fewer up moves than the free run" true
    (List.length (List.filter (fun m -> m.Sizer.direction = `Up) r.Sizer.moves)
    <= List.length (List.filter (fun m -> m.Sizer.direction = `Up) free.Sizer.moves))

let test_sizer_respects_budget () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let free = Sizer.run ~config:small_config Sized.default c in
  let budget = (free.Sizer.area_before +. free.Sizer.area_after) /. 2.0 in
  let r =
    Sizer.run ~config:{ small_config with Sizer.area_budget = Some budget } Sized.default c
  in
  Alcotest.(check bool) "area stays within budget" true (r.Sizer.area_after <= budget +. 1e-9)

let test_sizer_zero_moves () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let r = Sizer.run ~config:{ small_config with Sizer.max_moves = 0 } Sized.default c in
  Alcotest.(check int) "no moves" 0 (List.length r.Sizer.moves);
  close "objective untouched" r.Sizer.objective_before r.Sizer.objective_after ~tol:0.0;
  close "area untouched" r.Sizer.area_before r.Sizer.area_after ~tol:0.0

let test_sizer_yield_curve () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let r = Sizer.run ~config:small_config Sized.default c in
  Alcotest.(check int) "same curve points" (List.length r.Sizer.yield_before)
    (List.length r.Sizer.yield_after);
  List.iter2
    (fun (t0, clk0) (t1, clk1) ->
      close "same yield targets" t0 t1 ~tol:0.0;
      Alcotest.(check bool) "clock never worse after sizing" true (clk1 <= clk0 +. 1e-9))
    r.Sizer.yield_before r.Sizer.yield_after

let test_sizer_recovery_from_largest () =
  (* power recovery: from the all-largest start a target with slack lets
     phase B downsize off-critical gates — area drops while the
     objective stays within the limit *)
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let sized = Sized.default in
  let largest = Sized.uniform sized c ~size:(Sized.num_sizes sized - 1) in
  (* a target 10% above the all-largest objective leaves recovery room *)
  let probe =
    Sizer.run ~config:{ small_config with Sizer.max_moves = 0 } ~initial:largest sized c
  in
  let target = 1.1 *. probe.Sizer.objective_before in
  let config =
    { Sizer.default_config with Sizer.max_moves = 200; target = Some target }
  in
  let r = Sizer.run ~config ~initial:largest sized c in
  close "starts at the all-largest objective" probe.Sizer.objective_before
    r.Sizer.objective_before ~tol:0.0;
  Alcotest.(check bool) "area recovered" true (r.Sizer.area_after < r.Sizer.area_before);
  Alcotest.(check bool) "capacitance recovered" true
    (r.Sizer.capacitance_after < r.Sizer.capacitance_before);
  Alcotest.(check bool) "objective stays within the target" true
    (r.Sizer.objective_after <= target +. 1e-9);
  Alcotest.(check bool) "every move is a downsize" true
    (List.for_all (fun m -> m.Sizer.direction = `Down) r.Sizer.moves);
  Alcotest.(check bool) "some gates ended smaller" true
    (Array.exists (fun s -> s < Sized.num_sizes sized - 1) r.Sizer.assignment)

let test_sizer_initial_validation () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let raises name initial =
    match Sizer.run ~initial Sized.default c with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "wrong length" (Array.make (Circuit.num_nets c + 1) 0);
  raises "size past the family" (Array.make (Circuit.num_nets c) 99);
  raises "negative size" (Array.make (Circuit.num_nets c) (-1));
  (* the given array is copied, not mutated in place *)
  let given = Sized.initial c in
  let r = Sizer.run ~config:small_config ~initial:given Sized.default c in
  Alcotest.(check bool) "input assignment untouched" true
    (Array.for_all (fun s -> s = 0) given);
  Alcotest.(check bool) "run still moved" true (r.Sizer.moves <> [])

let test_sizer_config_validation () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let raises name cfg =
    match Sizer.run ~config:cfg Sized.default c with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "quantile 0" { small_config with Sizer.quantile = 0.0 };
  raises "quantile 1" { small_config with Sizer.quantile = 1.0 };
  raises "negative moves" { small_config with Sizer.max_moves = -1 };
  raises "no candidates" { small_config with Sizer.candidates = 0 };
  raises "non-positive target" { small_config with Sizer.target = Some 0.0 }

let suite =
  [
    Alcotest.test_case "criticality in [0,1]" `Quick test_criticality_bounds;
    Alcotest.test_case "endpoint split sums to 1" `Quick test_criticality_endpoint_split;
    Alcotest.test_case "ranking order" `Quick test_criticality_ranked;
    Alcotest.test_case "single path fully critical" `Quick test_criticality_single_path;
    Alcotest.test_case "grid-domain adapter" `Quick test_criticality_grid_domain;
    Alcotest.test_case "sizer improves the objective" `Quick test_sizer_improves;
    Alcotest.test_case "sizer is deterministic" `Quick test_sizer_deterministic;
    Alcotest.test_case "sizer clean under --check" `Quick test_sizer_check_clean;
    Alcotest.test_case "target stops upsizing" `Quick test_sizer_target_stops;
    Alcotest.test_case "area budget respected" `Quick test_sizer_respects_budget;
    Alcotest.test_case "zero-move run is identity" `Quick test_sizer_zero_moves;
    Alcotest.test_case "yield curve improves" `Quick test_sizer_yield_curve;
    Alcotest.test_case "recovery from the all-largest start" `Quick
      test_sizer_recovery_from_largest;
    Alcotest.test_case "initial assignment validation" `Quick test_sizer_initial_validation;
    Alcotest.test_case "config validation" `Quick test_sizer_config_validation;
  ]
