(* Bit-parallel simulation: exhaustive equivalence of the packed gate
   kernels against the Value4 truth tables, and lane-for-lane exactness
   of Packed_sim against the scalar Logic_sim oracle. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Value4 = Spsta_logic.Value4
module Mis_model = Spsta_logic.Mis_model
module Packed_value4 = Spsta_sim.Packed_value4
module Packed_sim = Spsta_sim.Packed_sim
module Logic_sim = Spsta_sim.Logic_sim
module Input_spec = Spsta_sim.Input_spec
module Benchmarks = Spsta_experiments.Benchmarks
module Rng = Spsta_util.Rng

let values = [| Value4.Zero; Value4.One; Value4.Rising; Value4.Falling |]

(* Exhaustive kernel equivalence: for every gate kind and arity k <= 3,
   pack all 4^k input combinations into the lanes of one packed word
   (4^3 = 64 = the lane count) and compare every lane against eval4. *)
let test_kernels_exhaustive () =
  List.iter
    (fun kind ->
      let lo = Gate_kind.min_arity kind in
      let hi = match Gate_kind.max_arity kind with Some m -> min m 3 | None -> 3 in
      for k = lo to hi do
        let ncombo = 1 lsl (2 * k) in
        let combo_value c i = values.((c lsr (2 * i)) land 3) in
        let inputs =
          Array.init k (fun i -> Packed_value4.pack (Array.init ncombo (fun c -> combo_value c i)))
        in
        let out = Packed_value4.eval kind inputs in
        for c = 0 to ncombo - 1 do
          let expected = Gate_kind.eval4 kind (List.init k (combo_value c)) in
          if not (Value4.equal (Packed_value4.get out c) expected) then
            Alcotest.failf "%s arity %d combo %d: packed %s, eval4 %s"
              (Gate_kind.to_string kind) k c
              (Value4.to_string (Packed_value4.get out c))
              (Value4.to_string expected)
        done
      done)
    Gate_kind.all

(* The lane-wise connectives agree with Value4's on every lane pair. *)
let test_connectives () =
  let all16 a i = values.((i lsr (2 * a)) land 3) in
  let x = Packed_value4.pack (Array.init 16 (all16 0)) in
  let y = Packed_value4.pack (Array.init 16 (all16 1)) in
  for l = 0 to 15 do
    let a = all16 0 l and b = all16 1 l in
    Alcotest.(check string) "lnot" (Value4.to_string (Value4.lnot a))
      (Value4.to_string (Packed_value4.get (Packed_value4.lnot x) l));
    Alcotest.(check string) "land2" (Value4.to_string (Value4.land2 a b))
      (Value4.to_string (Packed_value4.get (Packed_value4.land2 x y) l));
    Alcotest.(check string) "lor2" (Value4.to_string (Value4.lor2 a b))
      (Value4.to_string (Packed_value4.get (Packed_value4.lor2 x y) l));
    Alcotest.(check string) "lxor2" (Value4.to_string (Value4.lxor2 a b))
      (Value4.to_string (Packed_value4.get (Packed_value4.lxor2 x y) l))
  done

let test_pack_masks () =
  let vs = Array.init 64 (fun l -> values.(l land 3)) in
  let p = Packed_value4.pack vs in
  Alcotest.(check bool) "unpack round trip" true
    (Array.for_all2 Value4.equal vs (Packed_value4.unpack p));
  Alcotest.(check int) "rise count" 16 (Packed_value4.popcount (Packed_value4.rise_mask p));
  Alcotest.(check int) "fall count" 16 (Packed_value4.popcount (Packed_value4.fall_mask p));
  Alcotest.(check int) "one count" 16 (Packed_value4.popcount (Packed_value4.one_mask p));
  Alcotest.(check int) "zero count" 16 (Packed_value4.popcount (Packed_value4.zero_mask p));
  Alcotest.(check int) "transition count" 32
    (Packed_value4.popcount (Packed_value4.transition_mask p))

(* Lane-for-lane oracle check: lane [l] of one packed run must equal —
   symbol and arrival time, at zero tolerance — a scalar run from an
   equal generator. *)
let lane_exact_check ?gate_delay ?delay_sigma ?mis ~lanes ~seed circuit ~spec =
  let sim = Packed_sim.create circuit in
  let rngs = Array.init lanes (fun l -> Rng.stream ~seed l) in
  Packed_sim.run ?gate_delay ?delay_sigma ?mis sim ~rngs ~spec;
  let n = Circuit.num_nets circuit in
  for l = 0 to lanes - 1 do
    let rng = Rng.stream ~seed l in
    let r = Logic_sim.run_random ?gate_delay ?delay_sigma ?mis rng circuit ~spec in
    for i = 0 to n - 1 do
      let pv = Packed_sim.lane_value sim i ~lane:l in
      if not (Value4.equal pv r.Logic_sim.values.(i)) then
        Alcotest.failf "lane %d net %s: packed %s, scalar %s" l
          (Circuit.net_name circuit i) (Value4.to_string pv)
          (Value4.to_string r.Logic_sim.values.(i));
      let pt = Packed_sim.lane_time sim i ~lane:l in
      if pt <> r.Logic_sim.times.(i) then
        Alcotest.failf "lane %d net %s: packed time %.17g, scalar %.17g" l
          (Circuit.net_name circuit i) pt r.Logic_sim.times.(i)
    done
  done

let test_oracle_plain () =
  lane_exact_check ~lanes:64 ~seed:101 (Benchmarks.load "s344")
    ~spec:(fun _ -> Input_spec.case_i)

let test_oracle_partial_block () =
  lane_exact_check ~lanes:17 ~seed:103 (Benchmarks.load "s386")
    ~spec:(fun _ -> Input_spec.case_ii)

let test_oracle_delay_sigma () =
  lane_exact_check ~delay_sigma:0.15 ~lanes:64 ~seed:107 (Benchmarks.load "s344")
    ~spec:(fun _ -> Input_spec.case_ii)

let test_oracle_mis () =
  let mis = Mis_model.make ~max_slowdown:0.25 ~min_speedup:0.2 () in
  lane_exact_check ~delay_sigma:0.1 ~mis ~lanes:64 ~seed:109 (Benchmarks.load "s386")
    ~spec:(fun _ -> Input_spec.case_i)

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_invalid_args () =
  let circuit = Benchmarks.s27 () in
  let sim = Packed_sim.create circuit in
  let spec _ = Input_spec.case_i in
  expect_invalid "empty rngs" (fun () -> Packed_sim.run sim ~rngs:[||] ~spec);
  expect_invalid "oversized rngs" (fun () ->
      Packed_sim.run sim ~rngs:(Array.init 65 (fun l -> Rng.stream ~seed:1 l)) ~spec);
  Packed_sim.run sim ~rngs:(Array.init 3 (fun l -> Rng.stream ~seed:1 l)) ~spec;
  Alcotest.(check int) "lanes_used" 3 (Packed_sim.lanes_used sim);
  Alcotest.(check int64) "active mask" 7L (Packed_sim.active sim);
  expect_invalid "lane beyond lanes_used" (fun () -> Packed_sim.lane_value sim 0 ~lane:3)

let suite =
  [
    Alcotest.test_case "kernels vs eval4, exhaustive" `Quick test_kernels_exhaustive;
    Alcotest.test_case "lane connectives" `Quick test_connectives;
    Alcotest.test_case "pack/unpack and masks" `Quick test_pack_masks;
    Alcotest.test_case "oracle: plain" `Quick test_oracle_plain;
    Alcotest.test_case "oracle: partial block" `Quick test_oracle_partial_block;
    Alcotest.test_case "oracle: delay sigma" `Quick test_oracle_delay_sigma;
    Alcotest.test_case "oracle: MIS + sigma" `Quick test_oracle_mis;
    Alcotest.test_case "argument validation" `Quick test_invalid_args;
  ]
