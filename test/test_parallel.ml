(* The persistent domain pool behind every ?domains knob: exact chunk
   coverage, exception propagation, worker reuse across jobs, and the
   inline fallbacks (domains = 1, nested parallel regions). *)

module Parallel = Spsta_util.Parallel

exception Boom of int

let test_ranges_partition () =
  List.iter
    (fun (chunks, n) ->
      let bounds = Parallel.ranges ~chunks n in
      Alcotest.(check int) "chunk count" (min chunks n) (Array.length bounds);
      (* contiguous, ordered, covering [0, n) exactly once *)
      let expected_lo = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check int) "contiguous" !expected_lo lo;
          Alcotest.(check bool) "non-empty" true (hi > lo);
          expected_lo := hi)
        bounds;
      Alcotest.(check int) "covers n" n !expected_lo)
    [ (1, 10); (3, 10); (10, 10); (16, 7); (7, 1_000) ]

let test_run_chunks_exactly_once () =
  let chunks = 37 in
  let hits = Array.make chunks 0 in
  (* distinct chunks write distinct slots, so no synchronisation needed *)
  Parallel.run_chunks ~domains:4 ~chunks (fun k -> hits.(k) <- hits.(k) + 1);
  Array.iteri
    (fun k h -> Alcotest.(check int) (Printf.sprintf "chunk %d runs once" k) 1 h)
    hits

let test_inline_when_single_domain () =
  let jobs_before = Parallel.pool_jobs () in
  let hits = Array.make 8 0 in
  Parallel.run_chunks ~domains:1 ~chunks:8 (fun k -> hits.(k) <- hits.(k) + 1);
  Alcotest.(check int) "all chunks ran" 8 (Array.fold_left ( + ) 0 hits);
  Alcotest.(check int) "no pooled job posted" jobs_before (Parallel.pool_jobs ())

let test_workers_reused_across_jobs () =
  (* warm the pool, then check repeated jobs bump the job counter
     without growing the worker set — the whole point of pooling *)
  Parallel.run_chunks ~domains:3 ~chunks:6 (fun _ -> ());
  let size = Parallel.pool_size () in
  let jobs = Parallel.pool_jobs () in
  Alcotest.(check bool) "pool spawned" true (size >= 1);
  for _ = 1 to 5 do
    Parallel.run_chunks ~domains:3 ~chunks:6 (fun _ -> ())
  done;
  Alcotest.(check int) "no respawn" size (Parallel.pool_size ());
  Alcotest.(check int) "five more jobs" (jobs + 5) (Parallel.pool_jobs ())

let test_exception_propagates () =
  let ran = Atomic.make 0 in
  let raised =
    try
      Parallel.run_chunks ~domains:4 ~chunks:16 (fun k ->
          ignore (Atomic.fetch_and_add ran 1);
          if k = 5 then raise (Boom k));
      false
    with Boom 5 -> true
  in
  Alcotest.(check bool) "Boom reached the caller" true raised;
  (* chunks claimed after the failure are skipped, but accounting stays
     exact: the pool is immediately reusable *)
  let hits = Array.make 4 0 in
  Parallel.run_chunks ~domains:4 ~chunks:4 (fun k -> hits.(k) <- 1);
  Alcotest.(check int) "pool healthy after failure" 4 (Array.fold_left ( + ) 0 hits)

let test_nested_calls_fall_back_inline () =
  (* a chunk that itself opens a parallel region must not deadlock on
     the busy pool: the inner call detects it and runs inline *)
  let inner = Array.make 64 0 in
  Parallel.run_chunks ~domains:4 ~chunks:8 (fun k ->
      Parallel.run_chunks ~domains:4 ~chunks:8 (fun j ->
          inner.((k * 8) + j) <- inner.((k * 8) + j) + 1));
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "inner unit %d" i) 1 h)
    inner

let test_iter_ranges_covers () =
  let n = 1000 in
  let seen = Array.make n 0 in
  Parallel.iter_ranges ~domains:4 n (fun lo hi ->
      for i = lo to hi - 1 do
        seen.(i) <- seen.(i) + 1
      done);
  Array.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "index %d" i) 1 h)
    seen

let suite =
  [
    Alcotest.test_case "ranges partition [0, n)" `Quick test_ranges_partition;
    Alcotest.test_case "run_chunks covers chunks exactly once" `Quick
      test_run_chunks_exactly_once;
    Alcotest.test_case "domains = 1 stays inline" `Quick test_inline_when_single_domain;
    Alcotest.test_case "workers reused across jobs" `Quick test_workers_reused_across_jobs;
    Alcotest.test_case "chunk exception reaches the caller" `Quick test_exception_propagates;
    Alcotest.test_case "nested regions fall back inline" `Quick
      test_nested_calls_fall_back_inline;
    Alcotest.test_case "iter_ranges covers [0, n)" `Quick test_iter_ranges_covers;
  ]
