(* JSONL protocol codec: encode/decode round trips for every request and
   response variant, and decoder rejection of malformed lines with the
   right error code. *)

module Json = Spsta_server.Json
module Protocol = Spsta_server.Protocol

let code = Alcotest.testable (Fmt.of_to_string Protocol.error_code_name) ( = )

let decode_error line =
  match Protocol.request_of_line line with
  | Ok _ -> Alcotest.failf "decoder accepted %s" line
  | Error e -> e

(* ---------- Json ---------- *)

let test_json_round_trip () =
  let samples =
    [ "null"; "true"; "false"; "42"; "-1.5"; "\"hi\""; "[]"; "[1,2,3]"; "{}";
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}" ]
  in
  List.iter
    (fun s -> Alcotest.(check string) s s (Json.to_string (Json.of_string s)))
    samples

let test_json_escapes () =
  let v = Json.Str "a\"b\\c\nd\te" in
  let s = Json.to_string v in
  Alcotest.(check string) "escaped" "\"a\\\"b\\\\c\\nd\\te\"" s;
  ( match Json.of_string s with
  | Json.Str decoded -> Alcotest.(check string) "round trip" "a\"b\\c\nd\te" decoded
  | _ -> Alcotest.fail "not a string" );
  match Json.of_string "\"\\u0041\\u00e9\"" with
  | Json.Str decoded -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" decoded
  | _ -> Alcotest.fail "not a string"

let test_json_rejects () =
  let bad = [ ""; "{"; "[1,"; "{\"a\"}"; "tru"; "1 2"; "{\"a\":1}x"; "'single'" ] in
  List.iter
    (fun s ->
      match Json.of_string_opt s with
      | None -> ()
      | Some _ -> Alcotest.failf "parser accepted %S" s)
    bad

let test_json_numbers () =
  Alcotest.(check (float 0.0)) "int" 42.0 (Option.get (Json.to_float_opt (Json.of_string "42")));
  Alcotest.(check (float 1e-12)) "exp" 1.5e3
    (Option.get (Json.to_float_opt (Json.of_string "1.5e3")));
  Alcotest.(check string) "integral floats print as ints" "7" (Json.to_string (Json.int 7));
  Alcotest.(check string) "non-finite encodes as null" "null"
    (Json.to_string (Json.float Float.nan))

(* ---------- request round trips ---------- *)

let all_requests : Protocol.request list =
  [ { id = "a1"; deadline_ms = None;
      kind = Analyze { circuit = "s344"; case = Protocol.Case_i; top = 0; check = false } };
    { id = "a2"; deadline_ms = Some 12.5;
      kind = Analyze { circuit = "bench/x.bench"; case = Protocol.Case_ii; top = 3; check = true } };
    { id = "s1"; deadline_ms = None; kind = Ssta { circuit = "s1196"; top = 5; check = false } };
    { id = "s2"; deadline_ms = None; kind = Ssta { circuit = "s27"; top = 0; check = true } };
    { id = "m1"; deadline_ms = Some 100.0;
      kind =
        Mc
          { circuit = "s386"; case = Protocol.Case_ii; runs = 2000; seed = 7; top = 0;
            engine = Protocol.Packed } };
    { id = "m2"; deadline_ms = None;
      kind =
        Mc
          { circuit = "s27"; case = Protocol.Case_i; runs = 100; seed = 1; top = 2;
            engine = Protocol.Scalar } };
    { id = "p1"; deadline_ms = None;
      kind =
        Paths
          { circuit = "c17"; k = 8; sigma_global = 0.05; sigma_spatial = 0.1;
            sigma_random = 0.02 } };
    { id = "z1"; deadline_ms = None;
      kind =
        Size
          { circuit = "s344"; quantile = 0.99; target = None; max_moves = 50; candidates = 8;
            sizes = 4; ratio = 1.5; initial = Protocol.Smallest; check = false } };
    { id = "z2"; deadline_ms = Some 5000.0;
      kind =
        Size
          { circuit = "s5378"; quantile = 0.95; target = Some 12.0; max_moves = 200;
            candidates = 4; sizes = 6; ratio = 2.0; initial = Protocol.Largest; check = true } };
    { id = "o1"; deadline_ms = None;
      kind = Session_open { session = "eco"; circuit = "s5378"; sizes = 4; ratio = 1.5 } };
    { id = "o2"; deadline_ms = Some 250.0;
      kind = Session_open { session = "big"; circuit = "bench/x.bench"; sizes = 6; ratio = 2.0 } };
    { id = "mu1"; deadline_ms = None;
      kind = Session_mutate { session = "eco"; mutation = Resize { net = "g12"; size = 2 } } };
    { id = "mu2"; deadline_ms = None;
      kind =
        Session_mutate
          { session = "eco"; mutation = Retype { net = "g7"; gate = Spsta_logic.Gate_kind.Nor } } };
    { id = "mu3"; deadline_ms = None;
      kind =
        Session_mutate
          { session = "eco";
            mutation =
              Set_input
                { net = "pi4"; mu_rise = 0.5; sigma_rise = 0.25; mu_fall = 0.0;
                  sigma_fall = 1.0 } } };
    { id = "q1"; deadline_ms = None; kind = Session_query { session = "eco"; top = 5 } };
    { id = "v1"; deadline_ms = None; kind = Session_verify { session = "eco" } };
    { id = "c1"; deadline_ms = None; kind = Session_close { session = "eco" } };
    { id = "st"; deadline_ms = None; kind = Stats };
    { id = "sd"; deadline_ms = None; kind = Shutdown } ]

let test_request_round_trip () =
  List.iter
    (fun r ->
      let line = Protocol.request_to_line r in
      match Protocol.request_of_line line with
      | Error e -> Alcotest.failf "decode of %s failed: %s" line e.Protocol.message
      | Ok r' ->
        (* re-encoding is canonical, so equality of lines is equality of
           requests *)
        Alcotest.(check string)
          (Protocol.kind_name r.Protocol.kind)
          line (Protocol.request_to_line r'))
    all_requests

let test_request_defaults () =
  match Protocol.request_of_line "{\"id\":\"x\",\"kind\":\"mc\",\"circuit\":\"s27\"}" with
  | Error e -> Alcotest.fail e.Protocol.message
  | Ok { kind = Mc p; deadline_ms; _ } ->
    Alcotest.(check int) "default runs" 10_000 p.Protocol.runs;
    Alcotest.(check int) "default seed" 42 p.Protocol.seed;
    Alcotest.(check int) "default top" 0 p.Protocol.top;
    Alcotest.(check bool) "no deadline" true (deadline_ms = None);
    Alcotest.(check string) "case defaults to I" "I" (Protocol.case_name p.Protocol.case);
    Alcotest.(check string) "engine defaults to packed" "packed"
      (Protocol.mc_engine_name p.Protocol.engine)
  | Ok _ -> Alcotest.fail "wrong kind"

let test_size_defaults () =
  match Protocol.request_of_line "{\"id\":\"x\",\"kind\":\"size\",\"circuit\":\"s27\"}" with
  | Error e -> Alcotest.fail e.Protocol.message
  | Ok { kind = Size p; _ } ->
    Alcotest.(check (float 0.0)) "default quantile" 0.99 p.Protocol.quantile;
    Alcotest.(check bool) "no target" true (p.Protocol.target = None);
    Alcotest.(check int) "default max_moves" 400 p.Protocol.max_moves;
    Alcotest.(check int) "default candidates" 8 p.Protocol.candidates;
    Alcotest.(check int) "default sizes" 4 p.Protocol.sizes;
    Alcotest.(check (float 0.0)) "default ratio" 1.5 p.Protocol.ratio;
    Alcotest.(check string) "initial defaults to smallest" "smallest"
      (Protocol.size_initial_name p.Protocol.initial);
    Alcotest.(check bool) "check defaults off" false p.Protocol.check
  | Ok _ -> Alcotest.fail "wrong kind"

let test_session_defaults () =
  ( match Protocol.request_of_line "{\"id\":\"x\",\"kind\":\"open\",\"session\":\"s\",\"circuit\":\"s27\"}" with
  | Error e -> Alcotest.fail e.Protocol.message
  | Ok { kind = Session_open p; _ } ->
    Alcotest.(check int) "default sizes" 4 p.Protocol.sizes;
    Alcotest.(check (float 0.0)) "default ratio" 1.5 p.Protocol.ratio
  | Ok _ -> Alcotest.fail "wrong kind" );
  ( match
      Protocol.request_of_line
        "{\"id\":\"x\",\"kind\":\"mutate\",\"session\":\"s\",\"op\":\"set_input\",\"net\":\"pi\"}"
    with
  | Error e -> Alcotest.fail e.Protocol.message
  | Ok { kind = Session_mutate { mutation = Set_input { mu_rise; sigma_fall; _ }; _ }; _ } ->
    Alcotest.(check (float 0.0)) "default mu" 0.0 mu_rise;
    Alcotest.(check (float 0.0)) "default sigma" 1.0 sigma_fall
  | Ok _ -> Alcotest.fail "wrong kind" );
  match Protocol.request_of_line "{\"id\":\"x\",\"kind\":\"query\",\"session\":\"s\"}" with
  | Error e -> Alcotest.fail e.Protocol.message
  | Ok { kind = Session_query { top; _ }; _ } -> Alcotest.(check int) "default top" 0 top
  | Ok _ -> Alcotest.fail "wrong kind"

(* ---------- response round trips ---------- *)

let all_responses : Protocol.response list =
  [ Ok
      { id = "r1"; kind = "analyze"; elapsed_ms = 1.25;
        result = Json.Obj [ ("endpoints", Json.List [ Json.int 3 ]) ] };
    Ok { id = "r2"; kind = "stats"; elapsed_ms = 0.0; result = Json.Null };
    Error { id = Some "r3"; code = Protocol.Timeout; message = "deadline exceeded" };
    Error { id = None; code = Protocol.Bad_json; message = "invalid JSON at offset 0" };
    Error { id = Some "r4"; code = Protocol.Circuit_not_found; message = "no such circuit" } ]

let test_response_round_trip () =
  List.iter
    (fun r ->
      let line = Protocol.response_to_line r in
      match Protocol.response_of_line line with
      | Error e -> Alcotest.failf "decode of %s failed: %s" line e.Protocol.message
      | Ok r' -> Alcotest.(check string) line line (Protocol.response_to_line r'))
    all_responses

let test_error_code_names () =
  List.iter
    (fun c ->
      Alcotest.check code "name round trip" c
        (Option.get (Protocol.error_code_of_name (Protocol.error_code_name c))))
    [ Protocol.Bad_json; Protocol.Unknown_kind; Protocol.Missing_field; Protocol.Bad_field;
      Protocol.Circuit_not_found; Protocol.Parse_failure; Protocol.Timeout;
      Protocol.Overloaded; Protocol.Frame_too_large; Protocol.Invalid_utf8;
      Protocol.Unknown_session; Protocol.Session_exists; Protocol.Session_limit;
      Protocol.Internal ]

(* ---------- malformed requests ---------- *)

let test_reject_bad_json () =
  let e = decode_error "this is { not json" in
  Alcotest.check code "bad json" Protocol.Bad_json e.Protocol.code;
  let e = decode_error "[1,2,3]" in
  Alcotest.check code "non-object" Protocol.Bad_json e.Protocol.code

let test_reject_unknown_kind () =
  let e = decode_error "{\"id\":\"x\",\"kind\":\"frobnicate\"}" in
  Alcotest.check code "unknown kind" Protocol.Unknown_kind e.Protocol.code;
  Alcotest.(check (option string)) "id preserved" (Some "x") e.Protocol.id

let test_reject_missing_field () =
  let e = decode_error "{\"kind\":\"analyze\",\"circuit\":\"s27\"}" in
  Alcotest.check code "missing id" Protocol.Missing_field e.Protocol.code;
  let e = decode_error "{\"id\":\"x\"}" in
  Alcotest.check code "missing kind" Protocol.Missing_field e.Protocol.code;
  let e = decode_error "{\"id\":\"x\",\"kind\":\"analyze\"}" in
  Alcotest.check code "missing circuit" Protocol.Missing_field e.Protocol.code;
  Alcotest.(check (option string)) "id preserved" (Some "x") e.Protocol.id

let test_reject_bad_field () =
  let cases =
    [ "{\"id\":7,\"kind\":\"stats\"}";
      "{\"id\":\"x\",\"kind\":\"analyze\",\"circuit\":17}";
      "{\"id\":\"x\",\"kind\":\"analyze\",\"circuit\":\"s27\",\"case\":\"XVII\"}";
      "{\"id\":\"x\",\"kind\":\"mc\",\"circuit\":\"s27\",\"runs\":-4}";
      "{\"id\":\"x\",\"kind\":\"mc\",\"circuit\":\"s27\",\"runs\":\"many\"}";
      "{\"id\":\"x\",\"kind\":\"mc\",\"circuit\":\"s27\",\"mc_engine\":\"quantum\"}";
      "{\"id\":\"x\",\"kind\":\"mc\",\"circuit\":\"s27\",\"mc_engine\":3}";
      "{\"id\":\"x\",\"kind\":\"paths\",\"circuit\":\"s27\",\"k\":0}";
      "{\"id\":\"x\",\"kind\":\"size\",\"circuit\":\"s27\",\"quantile\":1.5}";
      "{\"id\":\"x\",\"kind\":\"size\",\"circuit\":\"s27\",\"target\":0}";
      "{\"id\":\"x\",\"kind\":\"size\",\"circuit\":\"s27\",\"ratio\":1.0}";
      "{\"id\":\"x\",\"kind\":\"size\",\"circuit\":\"s27\",\"initial\":\"medium\"}";
      "{\"id\":\"x\",\"kind\":\"stats\",\"deadline_ms\":-1}";
      "{\"id\":\"x\",\"kind\":\"stats\",\"deadline_ms\":\"soon\"}";
      "{\"id\":\"x\",\"kind\":\"open\",\"session\":\"\",\"circuit\":\"s27\"}";
      "{\"id\":\"x\",\"kind\":\"open\",\"session\":\"s\",\"circuit\":\"s27\",\"sizes\":0}";
      "{\"id\":\"x\",\"kind\":\"open\",\"session\":\"s\",\"circuit\":\"s27\",\"ratio\":1.0}";
      "{\"id\":\"x\",\"kind\":\"mutate\",\"session\":\"s\",\"op\":\"resize\",\"net\":\"g\",\"size\":-1}";
      "{\"id\":\"x\",\"kind\":\"mutate\",\"session\":\"s\",\"op\":\"retype\",\"net\":\"g\",\"gate\":\"FROB\"}";
      "{\"id\":\"x\",\"kind\":\"mutate\",\"session\":\"s\",\"op\":\"set_input\",\"net\":\"g\",\"sigma_rise\":-0.5}";
      "{\"id\":\"x\",\"kind\":\"mutate\",\"session\":\"s\",\"op\":\"transmogrify\",\"net\":\"g\"}" ]
  in
  List.iter
    (fun line ->
      let e = decode_error line in
      Alcotest.check code line Protocol.Bad_field e.Protocol.code)
    cases

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_round_trip;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json rejects" `Quick test_json_rejects;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "request round trip" `Quick test_request_round_trip;
    Alcotest.test_case "request defaults" `Quick test_request_defaults;
    Alcotest.test_case "size request defaults" `Quick test_size_defaults;
    Alcotest.test_case "session request defaults" `Quick test_session_defaults;
    Alcotest.test_case "response round trip" `Quick test_response_round_trip;
    Alcotest.test_case "error code names" `Quick test_error_code_names;
    Alcotest.test_case "reject bad json" `Quick test_reject_bad_json;
    Alcotest.test_case "reject unknown kind" `Quick test_reject_unknown_kind;
    Alcotest.test_case "reject missing field" `Quick test_reject_missing_field;
    Alcotest.test_case "reject bad field" `Quick test_reject_bad_field;
  ]
