module Rng = Spsta_util.Rng

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_copy_independent () =
  let a = Rng.create ~seed:3 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  let _ = Rng.bits64 a in
  (* advancing a must not advance b *)
  let a' = Rng.copy a in
  Alcotest.(check bool) "streams diverge after independent draws" true
    (Rng.bits64 a' <> Rng.bits64 (Rng.copy b))

let test_float_range () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if not (x >= 0.0 && x < 1.0) then Alcotest.failf "float out of range: %f" x
  done

let test_float_mean () =
  let rng = Rng.create ~seed:13 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of range: %d" x
  done

let test_int_invalid () =
  let rng = Rng.create ~seed:19 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_coverage () =
  let rng = Rng.create ~seed:23 in
  let counts = Array.make 5 0 in
  for _ = 1 to 50_000 do
    let x = Rng.int rng 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_000 || c > 11_000 then Alcotest.failf "bucket %d count %d far from uniform" i c)
    counts

let test_bernoulli () =
  let rng = Rng.create ~seed:29 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "bernoulli rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_gaussian_moments () =
  let rng = Rng.create ~seed:31 in
  let n = 200_000 in
  let acc = Spsta_util.Stats.acc_create () in
  for _ = 1 to n do
    Spsta_util.Stats.acc_add acc (Rng.gaussian rng ~mu:2.0 ~sigma:3.0)
  done;
  Alcotest.(check bool) "gaussian mean" true
    (Float.abs (Spsta_util.Stats.acc_mean acc -. 2.0) < 0.05);
  Alcotest.(check bool) "gaussian stddev" true
    (Float.abs (Spsta_util.Stats.acc_stddev acc -. 3.0) < 0.05)

let test_choose_index () =
  let rng = Rng.create ~seed:37 in
  let weights = [| 1.0; 3.0; 0.0; 6.0 |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.choose_index rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight bucket never chosen" 0 counts.(2);
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "weight-1 bucket near 0.1" true (Float.abs (frac 0 -. 0.1) < 0.01);
  Alcotest.(check bool) "weight-6 bucket near 0.6" true (Float.abs (frac 3 -. 0.6) < 0.01)

let test_choose_index_invalid () =
  let rng = Rng.create ~seed:41 in
  Alcotest.check_raises "zero total" (Invalid_argument "Rng.choose_index: zero total weight")
    (fun () -> ignore (Rng.choose_index rng [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative weight" (Invalid_argument "Rng.choose_index: negative weight")
    (fun () -> ignore (Rng.choose_index rng [| 1.0; -1.0 |]))

let test_split_independence () =
  let parent = Rng.create ~seed:43 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  Alcotest.(check bool) "split children differ" true (Rng.bits64 child1 <> Rng.bits64 child2)

let test_stream_determinism () =
  let a = Rng.stream ~seed:47 9 and b = Rng.stream ~seed:47 9 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "equal (seed, index) give equal streams" (Rng.bits64 a) (Rng.bits64 b)
  done;
  (* random access: building stream 9 never requires streams 0..8 *)
  let c = Rng.stream ~seed:47 9 in
  let _ = Rng.stream ~seed:47 0 in
  let d = Rng.stream ~seed:47 9 in
  Alcotest.(check int64) "independent of other streams" (Rng.bits64 c) (Rng.bits64 d)

let test_stream_distinct () =
  (* non-overlap smoke: the first draws of many streams — and of the
     plain create-seeded generator — never collide *)
  let seen = Hashtbl.create 1024 in
  let record what v =
    if Hashtbl.mem seen v then Alcotest.failf "%s: duplicate draw" what;
    Hashtbl.replace seen v ()
  in
  for index = 0 to 63 do
    let rng = Rng.stream ~seed:53 index in
    for draw = 1 to 4 do
      record (Printf.sprintf "stream %d draw %d" index draw) (Rng.bits64 rng)
    done
  done;
  let plain = Rng.create ~seed:53 in
  for draw = 1 to 4 do
    record (Printf.sprintf "create draw %d" draw) (Rng.bits64 plain)
  done;
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.stream: negative index")
    (fun () -> ignore (Rng.stream ~seed:53 (-1)))

let test_jump () =
  let a = Rng.create ~seed:59 and b = Rng.create ~seed:59 in
  Rng.jump a;
  Rng.jump b;
  Alcotest.(check int64) "jump is deterministic" (Rng.bits64 a) (Rng.bits64 b);
  let plain = Rng.create ~seed:59 in
  let jumped = Rng.create ~seed:59 in
  Rng.jump jumped;
  Alcotest.(check bool) "jump advances the state" true (Rng.bits64 plain <> Rng.bits64 jumped);
  (* 2^128-step substreams from repeated jumps stay disjoint in practice *)
  let seen = Hashtbl.create 64 in
  let walker = Rng.create ~seed:59 in
  for sub = 0 to 7 do
    let r = Rng.copy walker in
    for draw = 1 to 4 do
      let v = Rng.bits64 r in
      if Hashtbl.mem seen v then Alcotest.failf "substream %d draw %d collides" sub draw;
      Hashtbl.replace seen v ()
    done;
    Rng.jump walker
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "int uniformity" `Quick test_int_coverage;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "choose_index distribution" `Quick test_choose_index;
    Alcotest.test_case "choose_index invalid" `Quick test_choose_index_invalid;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "stream determinism" `Quick test_stream_determinism;
    Alcotest.test_case "stream non-overlap smoke" `Quick test_stream_distinct;
    Alcotest.test_case "jump" `Quick test_jump;
  ]
