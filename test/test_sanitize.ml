(* Engine-wired invariant sanitizer: fault injection proves a corrupted
   gate evaluation is reported at exactly the offending net, driver kind
   and logic level; a checked run on a healthy circuit is bit-identical
   to an unchecked one. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Propagate = Spsta_engine.Propagate
module Sanitize = Propagate.Sanitize
module Analyzer = Spsta_core.Analyzer
module Input_spec = Spsta_sim.Input_spec
module Benchmarks = Spsta_experiments.Benchmarks

(* a -> n1 = NOT a -> n2 = AND(n1, b) -> n3 = NOT n2 (PO): three levels
   of gates so the fault can sit strictly inside the circuit *)
let build_chain () =
  let b = Circuit.Builder.create ~name:"chain" () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.And [ "n1"; "b" ];
  Circuit.Builder.add_gate b ~output:"n3" Gate_kind.Not [ "n2" ];
  Circuit.Builder.add_output b "n3";
  Circuit.Builder.finalize b

(* Arrival-sum domain over floats; [corrupt_at] (a net name) makes that
   gate emit NaN, modelling a broken transfer function. *)
let sum_domain ?corrupt_at () : (module Propagate.DOMAIN with type state = float) =
  (module struct
    type state = float

    let source _ = 0.0

    let eval circuit id _driver operands =
      let clean = 1.0 +. Array.fold_left Float.max 0.0 operands in
      match corrupt_at with
      | Some name when Circuit.net_name circuit id = name -> Float.nan
      | _ -> clean
  end)

let finite_check : float Sanitize.check =
  fun _circuit _id state ->
  if Float.is_finite state then None
  else Some ("non-finite", Printf.sprintf "arrival is %h" state)

let run_wrapped ?corrupt_at circuit =
  let dom = Sanitize.wrap ~circuit ~check:finite_check (sum_domain ?corrupt_at ()) in
  let module D = (val dom) in
  let module E = Propagate.Make (D) in
  E.run circuit

let test_violation_locates_fault () =
  let circuit = build_chain () in
  match run_wrapped ~corrupt_at:"n2" circuit with
  | _ -> Alcotest.fail "corrupted evaluation was not caught"
  | exception Sanitize.Violation v ->
    Alcotest.(check string) "circuit" "chain" v.circuit;
    Alcotest.(check string) "net" "n2" v.net;
    Alcotest.(check string) "driver is the gate kind" "AND" v.driver;
    Alcotest.(check int) "level" 2 v.level;
    Alcotest.(check string) "rule" "non-finite" v.rule

let test_fault_at_last_level () =
  let circuit = build_chain () in
  match run_wrapped ~corrupt_at:"n3" circuit with
  | _ -> Alcotest.fail "corrupted evaluation was not caught"
  | exception Sanitize.Violation v ->
    Alcotest.(check string) "net" "n3" v.net;
    Alcotest.(check string) "driver" "NOT" v.driver;
    Alcotest.(check int) "level" 3 v.level

let test_clean_run_passes () =
  let circuit = build_chain () in
  let result = run_wrapped circuit in
  Alcotest.(check (float 1e-12)) "po arrival" 3.0
    result.Propagate.per_net.(Circuit.find_exn circuit "n3")

let test_violation_printer () =
  let circuit = build_chain () in
  match run_wrapped ~corrupt_at:"n2" circuit with
  | _ -> Alcotest.fail "corrupted evaluation was not caught"
  | exception (Sanitize.Violation _ as e) ->
    let s = Printexc.to_string e in
    let contains sub =
      let n = String.length sub and len = String.length s in
      let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (Printf.sprintf "printer names the net (%s)" s) true (contains "n2");
    Alcotest.(check bool) "printer names the circuit" true (contains "chain");
    Alcotest.(check bool) "printer names the rule" true (contains "non-finite")

(* ---------- check on/off bit-identity ---------- *)

let test_checked_analyze_bit_identical () =
  let circuit = Benchmarks.load "s27" in
  let spec _ = Input_spec.case_i in
  let unchecked = Analyzer.Moments.analyze ~check:false circuit ~spec in
  let checked = Analyzer.Moments.analyze ~check:true circuit ~spec in
  List.iter
    (fun e ->
      let stats r dir =
        let mu, sigma, p = Analyzer.Moments.transition_stats (Analyzer.Moments.signal r e) dir in
        (mu, sigma, p)
      in
      (* Float.equal (not a tolerance): check-off must be the exact same
         computation, bit for bit *)
      List.iter
        (fun dir ->
          let mu0, s0, p0 = stats unchecked dir and mu1, s1, p1 = stats checked dir in
          Alcotest.(check bool) "mu identical" true (Float.equal mu0 mu1);
          Alcotest.(check bool) "sigma identical" true (Float.equal s0 s1);
          Alcotest.(check bool) "p identical" true (Float.equal p0 p1))
        [ `Rise; `Fall ])
    (Circuit.endpoints circuit)

let test_checked_ssta_bit_identical () =
  let circuit = Benchmarks.load "s27" in
  let unchecked = Spsta_ssta.Ssta.analyze ~check:false circuit in
  let checked = Spsta_ssta.Ssta.analyze ~check:true circuit in
  List.iter
    (fun e ->
      let a0 = Spsta_ssta.Ssta.arrival unchecked e and a1 = Spsta_ssta.Ssta.arrival checked e in
      let open Spsta_dist.Normal in
      Alcotest.(check bool) "rise identical" true
        (Float.equal (mean a0.Spsta_ssta.Ssta.rise) (mean a1.Spsta_ssta.Ssta.rise)
        && Float.equal (stddev a0.Spsta_ssta.Ssta.rise) (stddev a1.Spsta_ssta.Ssta.rise));
      Alcotest.(check bool) "fall identical" true
        (Float.equal (mean a0.Spsta_ssta.Ssta.fall) (mean a1.Spsta_ssta.Ssta.fall)
        && Float.equal (stddev a0.Spsta_ssta.Ssta.fall) (stddev a1.Spsta_ssta.Ssta.fall)))
    (Circuit.endpoints circuit)

(* ---------- all six analyzers complete under --check ---------- *)

let test_all_analyzers_check_clean () =
  let circuit = Benchmarks.load "s344" in
  let spec _ = Input_spec.case_ii in
  ignore (Analyzer.Moments.analyze ~check:true circuit ~spec);
  let module Grid = Analyzer.Make ((val Spsta_core.Top.discrete_backend ~dt:0.1 ())) in
  ignore (Grid.analyze ~check:true circuit ~spec);
  ignore (Spsta_ssta.Ssta.analyze ~check:true circuit);
  ignore (Spsta_ssta.Sta.analyze ~check:true circuit);
  ignore (Spsta_ssta.Bounds_ssta.analyze ~check:true circuit);
  let model =
    Spsta_variation.Param_model.create ~sigma_global:0.1 ~sigma_spatial:0.1 ~sigma_random:0.1
      ~grid:4 ()
  in
  let placement = Spsta_variation.Param_model.place model circuit in
  ignore (Spsta_variation.Canonical_ssta.analyze ~check:true model placement circuit);
  ignore (Spsta_variation.Interval_sta.analyze ~check:true circuit)

(* ---------- resolve / environment plumbing ---------- *)

let test_resolve () =
  Alcotest.(check bool) "explicit true wins" true (Sanitize.resolve (Some true));
  Alcotest.(check bool) "explicit false wins" false (Sanitize.resolve (Some false));
  Unix.putenv "SPSTA_CHECK" "1";
  Alcotest.(check bool) "env on" true (Sanitize.resolve None);
  Unix.putenv "SPSTA_CHECK" "off";
  Alcotest.(check bool) "env off" false (Sanitize.resolve None);
  Unix.putenv "SPSTA_CHECK" ""

let suite =
  [
    Alcotest.test_case "violation names net, gate kind, level" `Quick test_violation_locates_fault;
    Alcotest.test_case "fault at the last level" `Quick test_fault_at_last_level;
    Alcotest.test_case "clean run passes the wrapper" `Quick test_clean_run_passes;
    Alcotest.test_case "violation printer" `Quick test_violation_printer;
    Alcotest.test_case "checked analyze is bit-identical" `Quick test_checked_analyze_bit_identical;
    Alcotest.test_case "checked ssta is bit-identical" `Quick test_checked_ssta_bit_identical;
    Alcotest.test_case "all analyzers complete with check on" `Quick
      test_all_analyzers_check_clean;
    Alcotest.test_case "resolve explicit/env" `Quick test_resolve;
  ]
