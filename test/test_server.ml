(* Server subsystem: LRU cache semantics, worker-pool behaviour (results,
   deadlines, drain), and end-to-end batches — duplicate requests hit the
   memo table with identical responses, and responses are deterministic and
   independent of the worker-pool size. *)

module Json = Spsta_server.Json
module Protocol = Spsta_server.Protocol
module Cache = Spsta_server.Cache
module Pool = Spsta_server.Pool
module Server = Spsta_server.Server

(* ---------- LRU ---------- *)

let test_lru_eviction () =
  let lru = Cache.Lru.create ~capacity:2 in
  Cache.Lru.add lru "a" 1;
  Cache.Lru.add lru "b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1) (Cache.Lru.find lru "a");
  (* b is now least recently used; adding c evicts it *)
  Cache.Lru.add lru "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.Lru.find lru "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.Lru.find lru "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Cache.Lru.find lru "c");
  Alcotest.(check int) "evictions" 1 (Cache.Lru.evictions lru);
  Alcotest.(check int) "hits" 3 (Cache.Lru.hits lru);
  Alcotest.(check int) "misses" 1 (Cache.Lru.misses lru);
  Alcotest.(check int) "size" 2 (Cache.Lru.length lru)

let test_lru_replace () =
  let lru = Cache.Lru.create ~capacity:2 in
  Cache.Lru.add lru "a" 1;
  Cache.Lru.add lru "a" 10;
  Alcotest.(check (option int)) "replaced" (Some 10) (Cache.Lru.find lru "a");
  Alcotest.(check int) "no eviction on replace" 0 (Cache.Lru.evictions lru)

let test_cache_load_errors () =
  let cache = Cache.create () in
  ( match Cache.load_circuit cache "no_such_circuit_xyz" with
  | exception Cache.Load_error { code; _ } ->
    Alcotest.(check string) "not found code" "circuit_not_found"
      (Protocol.error_code_name code)
  | _ -> Alcotest.fail "expected Load_error" );
  let path = Filename.temp_file "spsta_bad" ".bench" in
  let oc = open_out path in
  output_string oc "INPUT(G1)\nG2 = FROB(G1)\n";
  close_out oc;
  ( match Cache.load_circuit cache path with
  | exception Cache.Load_error { code; _ } ->
    Alcotest.(check string) "parse error code" "parse_error" (Protocol.error_code_name code)
  | _ -> Alcotest.fail "expected Load_error" );
  Sys.remove path

let test_cache_digest_stable () =
  let cache = Cache.create () in
  let a = Cache.load_circuit cache "s27" in
  let b = Cache.load_circuit cache "s27" in
  Alcotest.(check string) "same digest" a.Cache.digest b.Cache.digest;
  Alcotest.(check bool) "second load is a hit" true (Cache.circuit_hits cache > 0)

(* ---------- pool ---------- *)

let test_pool_results () =
  let pool = Pool.create ~workers:4 ~queue_capacity:8 () in
  let tickets = List.init 32 (fun i -> Pool.submit pool (fun () -> i * i)) in
  List.iteri
    (fun i ticket ->
      match Pool.await ticket with
      | Pool.Done v -> Alcotest.(check int) (Printf.sprintf "job %d" i) (i * i) v
      | _ -> Alcotest.fail "job did not complete")
    tickets;
  Pool.shutdown pool;
  Alcotest.(check int) "all executed" 32 (Pool.executed pool)

let test_pool_exception () =
  let pool = Pool.create ~workers:1 ~queue_capacity:4 () in
  let ticket = Pool.submit pool (fun () -> failwith "boom") in
  ( match Pool.await ticket with
  | Pool.Failed (Failure m) -> Alcotest.(check string) "exn carried" "boom" m
  | _ -> Alcotest.fail "expected Failed" );
  Pool.shutdown pool

let test_pool_deadline () =
  let pool = Pool.create ~workers:1 ~queue_capacity:4 () in
  (* occupy the single worker so the deadlined job expires while queued *)
  let blocker = Pool.submit pool (fun () -> Unix.sleepf 0.05; 0) in
  let doomed = Pool.submit ~deadline_ms:1.0 pool (fun () -> 1) in
  ( match Pool.await doomed with
  | Pool.Timed_out { budget_ms; elapsed_ms } ->
    Alcotest.(check (float 1e-2)) "budget" 1.0 budget_ms;
    Alcotest.(check bool) "elapsed past budget" true (elapsed_ms >= 1.0)
  | _ -> Alcotest.fail "expected Timed_out" );
  ( match Pool.await blocker with
  | Pool.Done 0 -> ()
  | _ -> Alcotest.fail "blocker should finish normally" );
  Alcotest.(check int) "timeout counted" 1 (Pool.timed_out pool);
  Pool.shutdown pool

let test_pool_drain () =
  let pool = Pool.create ~workers:2 ~queue_capacity:16 () in
  let counter = Atomic.make 0 in
  let tickets =
    List.init 10 (fun _ -> Pool.submit pool (fun () -> Atomic.incr counter; ()))
  in
  (* shutdown must finish every accepted job before returning *)
  Pool.shutdown pool;
  Alcotest.(check int) "drained" 10 (Atomic.get counter);
  List.iter
    (fun t -> match Pool.await t with Pool.Done () -> () | _ -> Alcotest.fail "lost job")
    tickets

(* regression: on_complete exceptions were all silently swallowed.
   Non-fatal ones are now counted; the waiter still gets its outcome. *)
let test_pool_callback_errors () =
  let pool = Pool.create ~workers:2 ~queue_capacity:8 () in
  let tickets =
    List.init 6 (fun i ->
        Pool.submit ~on_complete:(fun _ -> if i mod 2 = 0 then failwith "callback boom") pool
          (fun () -> i))
  in
  List.iteri
    (fun i t ->
      match Pool.await t with
      | Pool.Done v -> Alcotest.(check int) "result delivered despite callback" i v
      | _ -> Alcotest.fail "job did not complete")
    tickets;
  Pool.shutdown pool;
  Alcotest.(check int) "raising callbacks counted" 3 (Pool.callback_errors pool)

(* regression: executed/timed_out were plain mutable ints read without
   synchronisation from other domains.  Hammer the counters from reader
   domains while the pool is under load; with Atomic counters the final
   tallies are exact and every interim read is a valid monotone value. *)
let test_pool_stats_hammer () =
  let pool = Pool.create ~workers:4 ~queue_capacity:16 () in
  let stop = Atomic.make false in
  let monotone = Atomic.make true in
  let readers =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let last = ref 0 in
            while not (Atomic.get stop) do
              let e = Pool.executed pool in
              if e < !last then Atomic.set monotone false;
              last := e;
              ignore (Pool.timed_out pool);
              ignore (Pool.callback_errors pool)
            done))
  in
  let tickets = List.init 200 (fun i -> Pool.submit pool (fun () -> i)) in
  List.iter (fun t -> ignore (Pool.await t)) tickets;
  Pool.shutdown pool;
  Atomic.set stop true;
  Array.iter Domain.join readers;
  Alcotest.(check bool) "executed counter monotone under races" true (Atomic.get monotone);
  Alcotest.(check int) "no increment lost" 200 (Pool.executed pool)

(* same race on the LRU hit/miss/eviction counters: read them from a
   second domain while the table is being exercised *)
let test_lru_stats_hammer () =
  let lru = Cache.Lru.create ~capacity:8 in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          ignore (Cache.Lru.hits lru);
          ignore (Cache.Lru.misses lru);
          ignore (Cache.Lru.evictions lru)
        done)
  in
  let writers =
    Array.init 2 (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to 499 do
              (* working set fits the capacity, so after the first round
                 every find hits — misses and hits are both exercised
                 whatever the domain interleaving *)
              let key = Printf.sprintf "k%d" (i mod 4) in
              ( match Cache.Lru.find lru key with
              | Some _ -> ()
              | None -> Cache.Lru.add lru key (w + i) )
            done))
  in
  Array.iter Domain.join writers;
  Atomic.set stop true;
  Domain.join reader;
  let hits = Cache.Lru.hits lru and misses = Cache.Lru.misses lru in
  Alcotest.(check int) "every find tallied exactly once" 1000 (hits + misses);
  Alcotest.(check bool) "both outcomes exercised" true (hits > 0 && misses > 0)

(* ---------- end-to-end batches ---------- *)

let config ~workers =
  { Server.default_config with Server.workers; queue_capacity = 8 }

let line ?(extra = "") ~id ~kind ~circuit () =
  Printf.sprintf "{\"id\":%S,\"kind\":%S,\"circuit\":%S%s}" id kind circuit extra

let fingerprint response =
  (* everything except elapsed_ms, which legitimately varies run to run *)
  match Protocol.response_of_line (Protocol.response_to_line response) with
  | Ok (Protocol.Ok { id; kind; result; _ }) ->
    Printf.sprintf "%s|%s|ok|%s" id kind (Json.to_string result)
  | Ok (Protocol.Error { id; code; message }) ->
    Printf.sprintf "%s|%s|%s"
      (Option.value id ~default:"-")
      (Protocol.error_code_name code) message
  | Error e -> Alcotest.failf "unparseable response: %s" e.Protocol.message

(* a fingerprint without its leading request id, for comparing duplicates *)
let payload_of fp =
  match String.index_opt fp '|' with
  | Some i -> String.sub fp (i + 1) (String.length fp - i - 1)
  | None -> fp

let test_batch_memo_hits () =
  let lines =
    [ line ~id:"a1" ~kind:"analyze" ~circuit:"s27" ();
      line ~id:"a2" ~kind:"analyze" ~circuit:"s27" ();
      line ~id:"a3" ~kind:"analyze" ~circuit:"s27" ();
      line ~id:"m1" ~kind:"mc" ~circuit:"s27" ~extra:",\"runs\":300,\"seed\":5" ();
      line ~id:"m2" ~kind:"mc" ~circuit:"s27" ~extra:",\"runs\":300,\"seed\":5" () ]
  in
  (* one worker serialises the duplicates, so later ones must hit the memo *)
  let t, responses = Server.run_batch ~config:(config ~workers:1) lines in
  Alcotest.(check int) "five responses" 5 (List.length responses);
  List.iter
    (fun r -> Alcotest.(check bool) "all ok" true (Protocol.is_ok r))
    responses;
  Alcotest.(check bool) "memo hits recorded" true (Cache.result_hits (Server.cache t) > 0);
  let fp = List.map (fun r -> payload_of (fingerprint r)) responses in
  Alcotest.(check string) "duplicate analyze identical" (List.nth fp 0) (List.nth fp 1);
  Alcotest.(check string) "duplicate analyze identical" (List.nth fp 0) (List.nth fp 2);
  Alcotest.(check string) "duplicate mc identical" (List.nth fp 3) (List.nth fp 4)

let test_batch_deterministic_across_pool_sizes () =
  let lines =
    [ line ~id:"r1" ~kind:"analyze" ~circuit:"s27" ~extra:",\"case\":\"II\"" ();
      line ~id:"r2" ~kind:"mc" ~circuit:"s27" ~extra:",\"runs\":500,\"seed\":11" ();
      line ~id:"r3" ~kind:"ssta" ~circuit:"c17" ();
      line ~id:"r4" ~kind:"paths" ~circuit:"c17" ~extra:",\"k\":4" ();
      line ~id:"r5" ~kind:"mc" ~circuit:"c17" ~extra:",\"runs\":500,\"seed\":11" () ]
  in
  let run workers =
    let _, responses = Server.run_batch ~config:(config ~workers) lines in
    List.map fingerprint responses
  in
  let serial = run 1 in
  let parallel = run 4 in
  List.iter2
    (fun a b -> Alcotest.(check string) "same response regardless of pool size" a b)
    serial parallel

let test_batch_identical_across_domains () =
  (* memo keys deliberately carry no domains component: the engine's
     parallel traversal is bit-identical, so the same request must yield
     byte-identical payloads at every analysis_domains setting *)
  let lines =
    [ line ~id:"d1" ~kind:"analyze" ~circuit:"s27" ();
      line ~id:"d2" ~kind:"analyze" ~circuit:"s386" ~extra:",\"case\":\"II\",\"top\":4" ();
      line ~id:"d3" ~kind:"ssta" ~circuit:"s344" ();
      line ~id:"d4" ~kind:"ssta" ~circuit:"c17" ~extra:",\"top\":2" () ]
  in
  let run domains =
    let config = { (config ~workers:2) with Server.analysis_domains = domains } in
    let _, responses = Server.run_batch ~config lines in
    List.map fingerprint responses
  in
  let serial = run 1 in
  List.iter
    (fun domains ->
      List.iter2
        (fun a b -> Alcotest.(check string) "same payload at every domain count" a b)
        serial (run domains))
    [ 2; 4 ]

let test_batch_error_isolation () =
  let lines =
    [ line ~id:"ok1" ~kind:"analyze" ~circuit:"s27" ();
      "{\"id\":\"bad1\",\"kind\":\"frobnicate\"}";
      "no json here";
      line ~id:"bad2" ~kind:"analyze" ~circuit:"no_such_circuit_xyz" ();
      line ~id:"slow" ~kind:"mc" ~circuit:"s27" ~extra:",\"runs\":5000,\"deadline_ms\":0.001"
        ();
      line ~id:"ok2" ~kind:"mc" ~circuit:"s27" ~extra:",\"runs\":200" ();
      "{\"id\":\"st\",\"kind\":\"stats\"}" ]
  in
  let _, responses = Server.run_batch ~config:(config ~workers:2) lines in
  let codes =
    List.map
      (fun r ->
        match r with
        | Protocol.Ok { kind; _ } -> "ok:" ^ kind
        | Protocol.Error { code; _ } -> Protocol.error_code_name code)
      responses
  in
  Alcotest.(check (list string)) "per-request outcomes"
    [ "ok:analyze"; "unknown_kind"; "bad_json"; "circuit_not_found"; "timeout"; "ok:mc";
      "ok:stats" ]
    codes

let test_batch_stats_sees_traffic () =
  let lines =
    [ line ~id:"a1" ~kind:"analyze" ~circuit:"s27" ();
      line ~id:"a2" ~kind:"analyze" ~circuit:"s27" ();
      "{\"id\":\"st\",\"kind\":\"stats\"}" ]
  in
  let _, responses = Server.run_batch ~config:(config ~workers:2) lines in
  match List.rev responses with
  | Protocol.Ok { kind = "stats"; result; _ } :: _ ->
    let hits =
      Option.bind (Json.member "cache" result) (Json.member "results")
      |> Fun.flip Option.bind (Json.member "hits")
      |> Fun.flip Option.bind Json.to_int_opt
    in
    Alcotest.(check bool) "stats reports memo hits" true (Option.get hits > 0);
    let analyze_ok =
      Option.bind (Json.member "metrics" result) (Json.member "requests")
      |> Fun.flip Option.bind (Json.member "analyze")
      |> Fun.flip Option.bind (Json.member "ok")
      |> Fun.flip Option.bind Json.to_int_opt
    in
    Alcotest.(check (option int)) "metrics counted analyzes" (Some 2) analyze_ok
  | _ -> Alcotest.fail "last response is not stats"

let suite =
  [
    Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
    Alcotest.test_case "lru replace" `Quick test_lru_replace;
    Alcotest.test_case "cache load errors" `Quick test_cache_load_errors;
    Alcotest.test_case "cache digest stable" `Quick test_cache_digest_stable;
    Alcotest.test_case "pool results" `Quick test_pool_results;
    Alcotest.test_case "pool exception" `Quick test_pool_exception;
    Alcotest.test_case "pool deadline" `Quick test_pool_deadline;
    Alcotest.test_case "pool drain" `Quick test_pool_drain;
    Alcotest.test_case "pool callback errors" `Quick test_pool_callback_errors;
    Alcotest.test_case "pool stats hammer" `Quick test_pool_stats_hammer;
    Alcotest.test_case "lru stats hammer" `Quick test_lru_stats_hammer;
    Alcotest.test_case "batch memo hits" `Quick test_batch_memo_hits;
    Alcotest.test_case "batch deterministic across pool sizes" `Quick
      test_batch_deterministic_across_pool_sizes;
    Alcotest.test_case "batch identical across domains" `Quick
      test_batch_identical_across_domains;
    Alcotest.test_case "batch error isolation" `Quick test_batch_error_isolation;
    Alcotest.test_case "batch stats sees traffic" `Quick test_batch_stats_sees_traffic;
  ]
