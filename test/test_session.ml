(* Stateful session subsystem: registry lifecycle and error codes,
   streamed-mutation bit-identity against an independent from-scratch
   analysis, pool affinity ordering and non-blocking admission, the
   persistent result store (recovery, dedup, compaction, torn lines),
   and the socket transport end to end — framing errors, per-connection
   pipelining and graceful shutdown over a real Unix-domain socket. *)

module Json = Spsta_server.Json
module Protocol = Spsta_server.Protocol
module Server = Spsta_server.Server
module Session = Spsta_server.Session
module Store = Spsta_server.Store
module Cache = Spsta_server.Cache
module Pool = Spsta_server.Pool
module Transport = Spsta_server.Transport
module Metrics = Spsta_server.Metrics
module Circuit = Spsta_netlist.Circuit
module Sized = Spsta_netlist.Sized_library
module Transform = Spsta_netlist.Transform
module Gate_kind = Spsta_logic.Gate_kind
module Normal = Spsta_dist.Normal
module Ssta = Spsta_ssta.Ssta
module Rng = Spsta_util.Rng

let json_num json key =
  match Json.member key json with
  | Some (Json.Num n) -> n
  | _ -> Alcotest.failf "no numeric field %s in %s" key (Json.to_string json)

let json_bool json key =
  match Json.member key json with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "no bool field %s in %s" key (Json.to_string json)

let json_str json key =
  match Json.member key json with
  | Some (Json.Str s) -> s
  | _ -> Alcotest.failf "no string field %s in %s" key (Json.to_string json)

let json_list json key =
  match Json.member key json with
  | Some (Json.List xs) -> xs
  | _ -> Alcotest.failf "no list field %s in %s" key (Json.to_string json)

let expect_error expected f =
  match f () with
  | exception Session.Error { code; _ } ->
    Alcotest.(check string) "error code" (Protocol.error_code_name expected)
      (Protocol.error_code_name code)
  | _ -> Alcotest.failf "expected %s error" (Protocol.error_code_name expected)

let open_params ?(sizes = 4) ?(ratio = 1.5) session circuit =
  { Protocol.session; circuit; sizes; ratio }

(* ---------- registry lifecycle ---------- *)

let test_registry_lifecycle () =
  let metrics = Metrics.create () in
  let reg = Session.create_registry ~max_sessions:2 metrics in
  let cache = Cache.create () in
  let circuit = (Cache.load_circuit cache "s27").Cache.circuit in
  let gate = Circuit.net_name circuit (Circuit.topo_gates circuit).(0) in
  let source = Circuit.net_name circuit (List.hd (Circuit.sources circuit)) in
  let opened = Session.open_session reg cache (open_params "a" "s27") in
  Alcotest.(check bool) "gates reported" true (json_num opened "gates" > 0.0);
  Alcotest.(check bool) "full sweep timed" true (json_num opened "full_ms" >= 0.0);
  expect_error Protocol.Session_exists (fun () ->
      Session.open_session reg cache (open_params "a" "s27"));
  ignore (Session.open_session reg cache (open_params "b" "s27"));
  expect_error Protocol.Session_limit (fun () ->
      Session.open_session reg cache (open_params "c" "s27"));
  Alcotest.(check int) "gauge counts opens" 2 (Session.open_count reg);
  expect_error Protocol.Unknown_session (fun () ->
      Session.mutate reg "zzz" (Protocol.Resize { net = gate; size = 1 }));
  let m = Session.mutate reg "a" (Protocol.Resize { net = gate; size = 1 }) in
  Alcotest.(check bool) "resize applied" true (json_bool m "applied");
  Alcotest.(check bool) "dirty cone non-empty" true (json_num m "dirty_gates" > 0.0);
  let m2 = Session.mutate reg "a" (Protocol.Resize { net = gate; size = 1 }) in
  Alcotest.(check bool) "same size is a no-op" false (json_bool m2 "applied");
  expect_error Protocol.Bad_field (fun () ->
      Session.mutate reg "a" (Protocol.Resize { net = gate; size = 99 }));
  expect_error Protocol.Bad_field (fun () ->
      Session.mutate reg "a" (Protocol.Resize { net = "no_such_net"; size = 1 }));
  expect_error Protocol.Bad_field (fun () ->
      Session.mutate reg "a"
        (Protocol.Set_input
           { net = gate; mu_rise = 0.0; sigma_rise = 1.0; mu_fall = 0.0; sigma_fall = 1.0 }));
  expect_error Protocol.Bad_field (fun () ->
      Session.mutate reg "a" (Protocol.Retype { net = source; gate = Gate_kind.Nand }));
  let v = Session.verify reg "a" in
  Alcotest.(check bool) "incremental state verifies" true (json_bool v "identical");
  let closed = Session.close reg "a" in
  Alcotest.(check string) "close names the session" "a" (json_str closed "session");
  expect_error Protocol.Unknown_session (fun () -> ignore (Session.close reg "a"));
  ignore (Session.open_session reg cache (open_params "c" "s27"));
  Alcotest.(check int) "slot freed by close" 2 (Session.open_count reg)

(* ---------- idle eviction ---------- *)

let test_idle_eviction () =
  let metrics = Metrics.create () in
  let reg = Session.create_registry ~max_sessions:4 metrics in
  let cache = Cache.create () in
  ignore (Session.open_session reg cache (open_params "idle" "s27"));
  ignore (Session.open_session reg cache (open_params "busy" "s27"));
  (* a held inflight count pins the session regardless of its clock *)
  Session.retain reg "busy";
  let victims = Session.evict_idle reg ~idle_timeout_s:(-1.0) in
  Alcotest.(check (list string)) "only the idle session went" [ "idle" ] victims;
  Session.release reg "busy";
  let victims = Session.evict_idle reg ~idle_timeout_s:(-1.0) in
  Alcotest.(check (list string)) "released session is evictable" [ "busy" ] victims;
  Alcotest.(check int) "registry empty" 0 (Session.open_count reg)

(* ---------- streamed mutations vs from-scratch analysis ---------- *)

(* Mirror of one mutation in terms of net names, applied both to the
   live session and to an independent reference copy. *)
type op =
  | Op_resize of string * int
  | Op_retype of string * Gate_kind.t
  | Op_input of string * float * float

let flip_kind = function
  | Gate_kind.And -> Gate_kind.Nand
  | Gate_kind.Nand -> Gate_kind.And
  | Gate_kind.Or -> Gate_kind.Nor
  | Gate_kind.Nor -> Gate_kind.Or
  | Gate_kind.Xor -> Gate_kind.Xnor
  | Gate_kind.Xnor -> Gate_kind.Xor
  | Gate_kind.Not -> Gate_kind.Buf
  | Gate_kind.Buf -> Gate_kind.Not

let test_stream_bit_identity () =
  let metrics = Metrics.create () in
  let reg = Session.create_registry metrics in
  let cache = Cache.create () in
  let name = "s344" in
  let circuit = (Cache.load_circuit cache name).Cache.circuit in
  let gates = Circuit.topo_gates circuit in
  let sources = Array.of_list (Circuit.sources circuit) in
  ignore (Session.open_session reg cache (open_params "eco" name));
  (* generate a deterministic 100-op stream over net names *)
  let rng = Rng.create ~seed:42 in
  let cur_size = Hashtbl.create 64 in
  let cur_kind = Hashtbl.create 64 in
  Array.iter
    (fun g ->
      match Circuit.driver circuit g with
      | Circuit.Gate { kind; _ } -> Hashtbl.replace cur_kind (Circuit.net_name circuit g) kind
      | Circuit.Input | Circuit.Dff_output _ -> ())
    gates;
  let ops =
    List.init 100 (fun i ->
        if i mod 13 = 5 then begin
          let s = Circuit.net_name circuit sources.(Rng.int rng (Array.length sources)) in
          Op_input (s, Rng.gaussian rng ~mu:0.0 ~sigma:0.5, 0.5 +. Rng.float rng)
        end
        else if i mod 7 = 3 then begin
          let g = Circuit.net_name circuit gates.(Rng.int rng (Array.length gates)) in
          let kind = flip_kind (Hashtbl.find cur_kind g) in
          Hashtbl.replace cur_kind g kind;
          Op_retype (g, kind)
        end
        else begin
          let g = Circuit.net_name circuit gates.(Rng.int rng (Array.length gates)) in
          let before = Option.value ~default:0 (Hashtbl.find_opt cur_size g) in
          let size = (before + 1 + Rng.int rng 3) mod 4 in
          Hashtbl.replace cur_size g size;
          Op_resize (g, size)
        end)
  in
  (* independent reference: a private copy mutated directly *)
  let ref_circuit = Session.copy_circuit circuit in
  let sized = Sized.family ~sizes:4 ~ratio:1.5 Spsta_netlist.Cell_library.default in
  let asg = Sized.initial ref_circuit in
  let overrides = Hashtbl.create 8 in
  let applied = ref 0 in
  List.iter
    (fun op ->
      let mutation, reference =
        match op with
        | Op_resize (net, size) ->
          ( Protocol.Resize { net; size },
            fun () ->
              ignore (Transform.resize_gate sized ref_circuit asg
                        (Circuit.find_exn ref_circuit net) ~size) )
        | Op_retype (net, kind) ->
          ( Protocol.Retype { net; gate = kind },
            fun () ->
              ignore (Transform.retype_gate ref_circuit (Circuit.find_exn ref_circuit net) ~kind)
          )
        | Op_input (net, mu, sigma) ->
          ( Protocol.Set_input
              { net; mu_rise = mu; sigma_rise = sigma; mu_fall = -.mu; sigma_fall = sigma },
            fun () ->
              Hashtbl.replace overrides
                (Circuit.find_exn ref_circuit net)
                { Ssta.rise = Normal.make ~mu ~sigma;
                  fall = Normal.make ~mu:(-.mu) ~sigma } )
      in
      let payload = Session.mutate reg "eco" mutation in
      if json_bool payload "applied" then incr applied;
      reference ())
    ops;
  Alcotest.(check bool) "mutations drove incremental analyses" true
    (Metrics.sessions_incremental metrics > 50);
  Alcotest.(check int) "all 100 mutations counted" 100 (Metrics.sessions_mutations metrics);
  (* the session's claim about itself *)
  let v = Session.verify reg "eco" in
  Alcotest.(check bool) "session state = from-scratch sweep" true (json_bool v "identical");
  Alcotest.(check int) "every net compared"
    (Circuit.num_nets circuit)
    (int_of_float (json_num v "nets_compared"));
  (* and the independent reference agrees endpoint by endpoint, bit for
     bit *)
  let input_arrival_of id =
    match Hashtbl.find_opt overrides id with
    | Some a -> a
    | None -> { Ssta.rise = Normal.standard; fall = Normal.standard }
  in
  let expected =
    Ssta.analyze_rf ~delay_rf:(Sized.delay_rf sized ref_circuit asg) ~input_arrival_of
      ref_circuit
  in
  let bits = Int64.bits_of_float in
  let q = Session.query reg "eco" ~top:0 in
  let endpoints = json_list q "endpoints" in
  Alcotest.(check int) "all endpoints reported"
    (List.length (Circuit.endpoints ref_circuit))
    (List.length endpoints);
  List.iter
    (fun e ->
      let net = json_str e "net" in
      let a = Ssta.arrival expected (Circuit.find_exn ref_circuit net) in
      List.iter
        (fun (key, value) ->
          Alcotest.(check int64) (net ^ " " ^ key) (bits value) (bits (json_num e key)))
        [ ("mu_rise", Normal.mean a.Ssta.rise); ("sigma_rise", Normal.stddev a.Ssta.rise);
          ("mu_fall", Normal.mean a.Ssta.fall); ("sigma_fall", Normal.stddev a.Ssta.fall) ])
    endpoints;
  ignore (Session.close reg "eco")

(* ---------- pool: affinity ordering and non-blocking admission ---------- *)

let test_pool_affinity_order () =
  let pool = Pool.create ~queue_capacity:64 ~workers:4 () in
  let log = ref [] in
  let log_mutex = Mutex.create () in
  let record i =
    Mutex.lock log_mutex;
    log := i :: !log;
    Mutex.unlock log_mutex
  in
  let tickets =
    List.init 40 (fun i ->
        let affinity = if i mod 2 = 0 then Some "a" else Some "b" in
        Pool.submit ?affinity pool (fun () ->
            record i;
            i))
  in
  List.iter (fun t -> ignore (Pool.await t)) tickets;
  Pool.shutdown pool;
  let seen = List.rev !log in
  let stream key = List.filter (fun i -> i mod 2 = key) seen in
  Alcotest.(check (list int)) "key a executes in submission order"
    (List.init 20 (fun i -> 2 * i))
    (stream 0);
  Alcotest.(check (list int)) "key b executes in submission order"
    (List.init 20 (fun i -> (2 * i) + 1))
    (stream 1)

let test_pool_try_submit_rejects () =
  let pool = Pool.create ~queue_capacity:2 ~workers:1 () in
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let blocker () =
    Atomic.set started true;
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done;
    0
  in
  let t1 = Pool.submit pool blocker in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* worker is busy; fill the runnable queue *)
  let t2 = Pool.submit pool (fun () -> 1) in
  let t3 = Pool.submit pool (fun () -> 2) in
  ( match Pool.try_submit pool (fun () -> 3) with
  | None -> ()
  | Some _ -> Alcotest.fail "try_submit must refuse a full queue" );
  Atomic.set gate true;
  List.iter (fun t -> ignore (Pool.await t)) [ t1; t2; t3 ];
  Pool.shutdown pool

let test_pool_affinity_chain_bound () =
  let pool = Pool.create ~queue_capacity:2 ~workers:1 () in
  let gate = Atomic.make false in
  let started = Atomic.make false in
  let t1 =
    Pool.submit ~affinity:"s" pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done;
        0)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* park two successors behind the running keyed job: chain at capacity *)
  let t2 = Option.get (Pool.try_submit ~affinity:"s" pool (fun () -> 1)) in
  let t3 = Option.get (Pool.try_submit ~affinity:"s" pool (fun () -> 2)) in
  ( match Pool.try_submit ~affinity:"s" pool (fun () -> 3) with
  | None -> ()
  | Some _ -> Alcotest.fail "try_submit must refuse a full affinity chain" );
  (* the runnable queue itself is empty, so unkeyed work is admitted *)
  let t4 =
    match Pool.try_submit pool (fun () -> 4) with
    | Some t -> t
    | None -> Alcotest.fail "unkeyed admission must not be blocked by a parked chain"
  in
  Atomic.set gate true;
  List.iter (fun t -> ignore (Pool.await t)) [ t1; t2; t3; t4 ];
  Pool.shutdown pool

(* ---------- persistent store ---------- *)

let temp_store_path () =
  let path = Filename.temp_file "spsta_store" ".jsonl" in
  Sys.remove path;
  path

let test_store_persistence () =
  let path = temp_store_path () in
  let s = Store.open_ ~fsync:false path in
  Store.add s "k1" (Json.Obj [ ("a", Json.int 1) ]);
  Store.add s "k2" (Json.Str "v2");
  Store.add s "k1" (Json.Str "superseded");
  Alcotest.(check int) "re-store of a known key is not appended" 2 (Store.appends s);
  Store.close s;
  let s2 = Store.open_ ~fsync:false path in
  Alcotest.(check int) "records recovered" 2 (Store.loaded s2);
  ( match Store.find s2 "k1" with
  | Some (Json.Obj [ ("a", Json.Num 1.0) ]) -> ()
  | other ->
    Alcotest.failf "wrong recovered value: %s"
      (match other with Some j -> Json.to_string j | None -> "None") );
  Alcotest.(check bool) "miss counted" true (Store.find s2 "nope" = None);
  Alcotest.(check int) "hits" 1 (Store.hits s2);
  Alcotest.(check int) "misses" 1 (Store.misses s2);
  Store.close s2;
  Sys.remove path

let test_store_compaction_and_torn_lines () =
  let path = temp_store_path () in
  let oc = open_out path in
  (* five keys, five versions each: 20 superseded records force a
     compaction at open; plus one garbage line and one torn append *)
  for version = 1 to 5 do
    for k = 1 to 5 do
      Printf.fprintf oc "{\"k\":\"key%d\",\"v\":%d}\n" k (10 * version)
    done
  done;
  output_string oc "not json at all\n";
  output_string oc "{\"k\":\"torn";
  close_out oc;
  let s = Store.open_ ~fsync:false path in
  Alcotest.(check int) "live records" 5 (Store.length s);
  ( match Store.find s "key3" with
  | Some (Json.Num 50.0) -> ()
  | _ -> Alcotest.fail "latest version must win" );
  Store.close s;
  let lines = ref 0 in
  let ic = open_in path in
  (try
     while true do
       ignore (input_line ic);
       incr lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "compaction rewrote only live records" 5 !lines;
  Sys.remove path

let test_cache_store_roundtrip () =
  let path = temp_store_path () in
  let key = "ssta|deadbeef|top=0" in
  let payload = Json.Obj [ ("endpoints", Json.List [ Json.int 1 ]) ] in
  let store1 = Store.open_ ~fsync:false path in
  let cache1 = Cache.create ~store:store1 () in
  Cache.store_result cache1 key payload;
  Store.close store1;
  (* a second instance on the same path sees the memoised payload *)
  let store2 = Store.open_ ~fsync:false path in
  let cache2 = Cache.create ~store:store2 () in
  ( match Cache.find_result cache2 key with
  | Some p -> Alcotest.(check string) "payload bytes" (Json.to_string payload) (Json.to_string p)
  | None -> Alcotest.fail "store-backed memo missed after restart" );
  Alcotest.(check int) "store hit counted" 1 (Store.hits store2);
  (* promoted into the LRU: the next lookup never reaches the store *)
  ignore (Cache.find_result cache2 key);
  Alcotest.(check int) "second lookup served by LRU" 1 (Store.hits store2);
  Store.close store2;
  Sys.remove path

(* ---------- socket transport ---------- *)

let socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "spsta_test_%d.sock" (Unix.getpid ()))

let wait_for_socket path =
  let rec go n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else begin
      Unix.sleepf 0.05;
      go (n - 1)
    end
  in
  go 100

let rpc ic oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let ok_result line =
  match Protocol.response_of_line line with
  | Ok (Protocol.Ok { result; _ }) -> result
  | Ok (Protocol.Error { code; message; _ }) ->
    Alcotest.failf "unexpected error %s: %s" (Protocol.error_code_name code) message
  | Error e -> Alcotest.failf "unparseable response: %s" e.Protocol.message

let error_code line =
  match Protocol.response_of_line line with
  | Ok (Protocol.Error { code; _ }) -> Protocol.error_code_name code
  | Ok (Protocol.Ok _) -> Alcotest.failf "expected an error, got ok: %s" line
  | Error e -> Alcotest.failf "unparseable response: %s" e.Protocol.message

let test_socket_transport () =
  let path = socket_path () in
  if Sys.file_exists path then Sys.remove path;
  let config =
    { Server.default_config with
      Server.workers = 2; max_frame_bytes = 4096; max_inflight = 8 }
  in
  let server =
    Domain.spawn (fun () ->
        ignore (Transport.run ~config ~signals:false (Transport.Unix_socket path)))
  in
  wait_for_socket path;
  let ic, oc = Unix.open_connection (Unix.ADDR_UNIX path) in
  (* full session lifecycle over the wire *)
  let opened =
    ok_result
      (rpc ic oc "{\"id\":\"o\",\"kind\":\"open\",\"session\":\"w\",\"circuit\":\"s27\"}")
  in
  Alcotest.(check string) "session echoed" "w" (json_str opened "session");
  let q =
    ok_result (rpc ic oc "{\"id\":\"q0\",\"kind\":\"query\",\"session\":\"w\",\"top\":1}")
  in
  Alcotest.(check int) "top=1 returns one endpoint" 1 (List.length (json_list q "endpoints"));
  let source =
    (* a real input net of s27, looked up out of band *)
    let c = (Cache.load_circuit (Cache.create ()) "s27").Cache.circuit in
    Circuit.net_name c (List.hd (Circuit.sources c))
  in
  let m =
    ok_result
      (rpc ic oc
         (Printf.sprintf
            "{\"id\":\"m\",\"kind\":\"mutate\",\"session\":\"w\",\"op\":\"set_input\",\"net\":%s,\"mu_rise\":0.5}"
            (Json.to_string (Json.string source))))
  in
  Alcotest.(check bool) "mutation applied over the wire" true (json_bool m "applied");
  let v = ok_result (rpc ic oc "{\"id\":\"v\",\"kind\":\"verify\",\"session\":\"w\"}") in
  Alcotest.(check bool) "verify over the wire" true (json_bool v "identical");
  (* invalid UTF-8 answers a structured error and keeps the connection *)
  Alcotest.(check string) "invalid utf8 code" "invalid_utf8" (error_code (rpc ic oc "\xff\xfe{"));
  let stats = ok_result (rpc ic oc "{\"id\":\"s\",\"kind\":\"stats\"}") in
  ( match Json.member "sessions" stats with
  | Some sessions ->
    Alcotest.(check (float 0.0)) "one open session" 1.0 (json_num sessions "open")
  | None -> Alcotest.fail "stats must report session gauges" );
  (* an oversized frame answers a structured error, then closes *)
  let ic2, oc2 = Unix.open_connection (Unix.ADDR_UNIX path) in
  let big = String.concat "" [ "{\"id\":\""; String.make 5000 'x'; "\"}" ] in
  Alcotest.(check string) "frame too large code" "frame_too_large" (error_code (rpc ic2 oc2 big));
  ( match input_line ic2 with
  | exception End_of_file -> ()
  | line -> Alcotest.failf "connection must close after frame_too_large, got %s" line );
  (try Unix.shutdown_connection ic2 with _ -> ());
  (* graceful shutdown: request is acknowledged after the drain *)
  let ack = ok_result (rpc ic oc "{\"id\":\"bye\",\"kind\":\"shutdown\"}") in
  ( match Json.member "drained" ack with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "shutdown ack must confirm the drain" );
  Domain.join server;
  (try Unix.shutdown_connection ic with _ -> ());
  Alcotest.(check bool) "socket file removed on shutdown" false (Sys.file_exists path)

let suite =
  [
    Alcotest.test_case "registry lifecycle" `Quick test_registry_lifecycle;
    Alcotest.test_case "idle eviction" `Quick test_idle_eviction;
    Alcotest.test_case "streamed mutations = from-scratch analysis" `Quick
      test_stream_bit_identity;
    Alcotest.test_case "pool affinity ordering" `Quick test_pool_affinity_order;
    Alcotest.test_case "pool try_submit rejects when full" `Quick test_pool_try_submit_rejects;
    Alcotest.test_case "pool bounds affinity chains" `Quick test_pool_affinity_chain_bound;
    Alcotest.test_case "store persists across restart" `Quick test_store_persistence;
    Alcotest.test_case "store compacts and skips torn lines" `Quick
      test_store_compaction_and_torn_lines;
    Alcotest.test_case "cache serves warm hits from the store" `Quick test_cache_store_roundtrip;
    Alcotest.test_case "socket transport end to end" `Quick test_socket_transport;
  ]
