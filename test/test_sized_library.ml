(* Size groups and the resize transform: constructor validation, the
   drive-strength scaling laws of the generated families, assignment
   bookkeeping, and the QCheck monotonicity property behind the sizer —
   upsizing any single gate never slows the chip down and never shrinks
   it. *)

module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Sized = Spsta_netlist.Sized_library
module Transform = Spsta_netlist.Transform
module Normal = Spsta_dist.Normal
module Ssta = Spsta_ssta.Ssta

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let raises name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let kinds =
  [ Gate_kind.Not; Gate_kind.Buf; Gate_kind.And; Gate_kind.Nand; Gate_kind.Or;
    Gate_kind.Nor; Gate_kind.Xor; Gate_kind.Xnor ]

(* ---------- constructor validation ---------- *)

let test_make_validation () =
  let base = Spsta_netlist.Cell_library.default in
  raises "empty drives" (fun () -> Sized.make ~drives:[||] base);
  raises "non-positive drive" (fun () -> Sized.make ~drives:[| 0.0; 1.0 |] base);
  raises "non-finite drive" (fun () -> Sized.make ~drives:[| 1.0; Float.infinity |] base);
  raises "non-increasing drives" (fun () -> Sized.make ~drives:[| 1.0; 1.0 |] base);
  raises "intrinsic above 1" (fun () -> Sized.make ~intrinsic:1.5 ~drives:[| 1.0 |] base);
  raises "family sizes < 1" (fun () -> Sized.family ~sizes:0 base);
  raises "family ratio <= 1" (fun () -> Sized.family ~ratio:1.0 base)

let test_family_shape () =
  let t = Sized.family ~sizes:5 ~ratio:2.0 Spsta_netlist.Cell_library.default in
  Alcotest.(check int) "num sizes" 5 (Sized.num_sizes t);
  close "drive ladder is geometric" 8.0 (Sized.drive t 3);
  raises "drive out of range" (fun () -> Sized.drive t 5)

(* the default laws: stronger is never slower, never smaller *)
let test_default_family_monotone () =
  let t = Sized.default in
  List.iter
    (fun kind ->
      List.iter
        (fun fanin ->
          for k = 0 to Sized.num_sizes t - 2 do
            let d0 = Sized.mean_delay t ~size:k kind ~fanin
            and d1 = Sized.mean_delay t ~size:(k + 1) kind ~fanin in
            if d1 > d0 +. 1e-12 then
              Alcotest.failf "%s/%d delay rises from size %d (%g -> %g)"
                (Gate_kind.to_string kind) fanin k d0 d1;
            let a0 = Sized.area t ~size:k kind ~fanin
            and a1 = Sized.area t ~size:(k + 1) kind ~fanin in
            if a1 < a0 then
              Alcotest.failf "%s/%d area falls from size %d" (Gate_kind.to_string kind) fanin k;
            let c0 = Sized.capacitance t ~size:k kind ~fanin
            and c1 = Sized.capacitance t ~size:(k + 1) kind ~fanin in
            if c1 < c0 then
              Alcotest.failf "%s/%d cap falls from size %d" (Gate_kind.to_string kind) fanin k
          done)
        [ 1; 2; 3; 4 ])
    kinds

let test_size_zero_matches_base () =
  (* drive 1 with the default laws reproduces the base library delay *)
  let t = Sized.default in
  let base = Sized.base t in
  List.iter
    (fun kind ->
      let r, f = Sized.rise_fall_of t ~size:0 kind ~fanin:2 in
      let br = Spsta_netlist.Cell_library.delay base kind ~fanin:2 `Rise in
      let bf = Spsta_netlist.Cell_library.delay base kind ~fanin:2 `Fall in
      close "size-0 rise = base" br r;
      close "size-0 fall = base" bf f)
    kinds

(* ---------- assignments and the resize transform ---------- *)

let test_resize_gate () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let t = Sized.default in
  let asg = Sized.initial c in
  let g = (Circuit.topo_gates c).(0) in
  Alcotest.(check int) "initial is all-smallest" 0 (Sized.size_of asg g);
  Alcotest.(check (list int)) "resize returns the dirty net" [ g ]
    (Transform.resize_gate t c asg g ~size:2);
  Alcotest.(check int) "assignment updated" 2 (Sized.size_of asg g);
  Alcotest.(check (list int)) "no-op resize returns no dirty nets" []
    (Transform.resize_gate t c asg g ~size:2);
  raises "size out of range" (fun () -> Transform.resize_gate t c asg g ~size:99);
  let source = List.hd (Circuit.sources c) in
  raises "resizing a source" (fun () -> Transform.resize_gate t c asg source ~size:1)

let test_totals_track_resizes () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let t = Sized.default in
  let asg = Sized.initial c in
  let g = (Circuit.topo_gates c).(0) in
  let a0 = Sized.total_area t c asg and c0 = Sized.total_capacitance t c asg in
  ignore (Transform.resize_gate t c asg g ~size:3);
  let a1 = Sized.total_area t c asg and c1 = Sized.total_capacitance t c asg in
  Alcotest.(check bool) "area grew" true (a1 > a0);
  Alcotest.(check bool) "cap grew" true (c1 > c0);
  close "area delta is the gate's"
    (Sized.gate_area t c asg g -. (Sized.gate_area t c asg g /. Sized.drive t 3))
    (a1 -. a0) ~tol:1e-9

let test_uniform () =
  let c = Spsta_experiments.Benchmarks.s27 () in
  let t = Sized.default in
  let top = Sized.num_sizes t - 1 in
  let asg = Sized.uniform t c ~size:top in
  Alcotest.(check int) "length" (Circuit.num_nets c) (Array.length asg);
  Array.iteri
    (fun i s ->
      match Circuit.driver c i with
      | Circuit.Gate _ -> Alcotest.(check int) "gate at top size" top s
      | Circuit.Input | Circuit.Dff_output _ -> Alcotest.(check int) "non-gate at 0" 0 s)
    asg;
  Alcotest.(check bool) "size 0 equals initial" true
    (Sized.uniform t c ~size:0 = Sized.initial c);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Sized_library.uniform: size -1 outside [0, 4)") (fun () ->
      ignore (Sized.uniform t c ~size:(-1)));
  Alcotest.check_raises "size past the family"
    (Invalid_argument "Sized_library.uniform: size 4 outside [0, 4)") (fun () ->
      ignore (Sized.uniform t c ~size:4))

(* ---------- QCheck: single-gate upsizing monotonicity ---------- *)

(* Upsizing any single gate never increases the mean critical-path
   delay and never decreases total area / switched capacitance — the
   property that makes the greedy upsize loop sound.  The delay side
   holds only up to Clark approximation error: speeding up an
   off-critical gate shifts second moments, and a downstream
   moment-matched MAX can report a mean larger by ~1e-5 on s344.  The
   1e-4 bound is ten times the worst case observed over every (gate,
   size) pair; area and capacitance are exact. *)
let upsizing_monotone =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let t = Sized.default in
  let gates = Circuit.topo_gates c in
  let chip_mean asg =
    let delay_rf id = Sized.delay_rf t c asg id in
    let r = Ssta.analyze_rf ~delay_rf c in
    Float.max (Normal.mean (Ssta.max_arrival r `Rise)) (Normal.mean (Ssta.max_arrival r `Fall))
  in
  QCheck.Test.make ~name:"upsizing one gate: delay never up, area/cap never down" ~count:40
    QCheck.(pair (int_bound (Array.length gates - 1)) (int_range 1 (Sized.num_sizes t - 1)))
    (fun (gi, size) ->
      let g = gates.(gi) in
      let asg = Sized.initial c in
      let d0 = chip_mean asg in
      let a0 = Sized.total_area t c asg and c0 = Sized.total_capacitance t c asg in
      ignore (Transform.resize_gate t c asg g ~size);
      let d1 = chip_mean asg in
      let a1 = Sized.total_area t c asg and c1 = Sized.total_capacitance t c asg in
      d1 <= d0 +. 1e-4 && a1 >= a0 && c1 >= c0)

let suite =
  [
    Alcotest.test_case "constructor validation" `Quick test_make_validation;
    Alcotest.test_case "family generator shape" `Quick test_family_shape;
    Alcotest.test_case "default family monotone" `Quick test_default_family_monotone;
    Alcotest.test_case "size 0 matches base library" `Quick test_size_zero_matches_base;
    Alcotest.test_case "resize_gate dirty set" `Quick test_resize_gate;
    Alcotest.test_case "totals track resizes" `Quick test_totals_track_resizes;
    Alcotest.test_case "uniform assignment" `Quick test_uniform;
    QCheck_alcotest.to_alcotest upsizing_monotone;
  ]
