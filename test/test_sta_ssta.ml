module Circuit = Spsta_netlist.Circuit
module Gate_kind = Spsta_logic.Gate_kind
module Normal = Spsta_dist.Normal
module Sta = Spsta_ssta.Sta
module Ssta = Spsta_ssta.Ssta

let close ?(tol = 1e-9) name expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10f, got %.10f" name expected actual

let buffer_chain n =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  let prev = ref "a" in
  for i = 1 to n do
    let name = Printf.sprintf "n%d" i in
    Circuit.Builder.add_gate b ~output:name Gate_kind.Buf [ !prev ];
    prev := name
  done;
  Circuit.Builder.add_output b !prev;
  Circuit.Builder.finalize b

let test_sta_chain () =
  let c = buffer_chain 5 in
  let r = Sta.analyze c in
  let out = List.hd (Circuit.primary_outputs c) in
  close "latest = depth" 5.0 (Sta.bounds r out).Sta.latest;
  close "earliest = depth" 5.0 (Sta.bounds r out).Sta.earliest;
  close "max latest" 5.0 (Sta.max_latest r)

let test_sta_input_bounds () =
  let c = buffer_chain 3 in
  let r = Sta.analyze ~input_bounds:{ Sta.earliest = -3.0; latest = 3.0 } c in
  let out = List.hd (Circuit.primary_outputs c) in
  close "latest with input window" 6.0 (Sta.bounds r out).Sta.latest;
  close "earliest with input window" 0.0 (Sta.bounds r out).Sta.earliest

let test_sta_reconvergent () =
  (* a -> n1 (1 level) and a -> n2 -> n3 (2 levels), y = AND(n1, n3) *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Buf [ "a" ];
  Circuit.Builder.add_gate b ~output:"n2" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_gate b ~output:"n3" Gate_kind.Not [ "n2" ];
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "n1"; "n3" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let r = Sta.analyze c in
  let y = Circuit.find_exn c "y" in
  close "short path" 2.0 (Sta.bounds r y).Sta.earliest;
  close "long path" 3.0 (Sta.bounds r y).Sta.latest;
  let e = Sta.critical_endpoint r in
  Alcotest.(check string) "critical endpoint" "y" (Circuit.net_name c e)

let test_ssta_chain_moments () =
  (* buffers add deterministic delay: mean grows by 1 per level, sigma
     stays at the input's 1.0 *)
  let c = buffer_chain 4 in
  let r = Ssta.analyze c in
  let out = List.hd (Circuit.primary_outputs c) in
  let a = Ssta.arrival r out in
  close "chain mean" 4.0 (Normal.mean a.Ssta.rise);
  close "chain sigma" 1.0 (Normal.stddev a.Ssta.rise);
  close "fall equals rise for buffers" 4.0 (Normal.mean a.Ssta.fall)

let test_ssta_not_swaps () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Not [ "a" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let rise_in = Normal.make ~mu:1.0 ~sigma:0.5 and fall_in = Normal.make ~mu:2.0 ~sigma:0.25 in
  let r = Ssta.analyze ~input_arrival:{ Ssta.rise = rise_in; fall = fall_in } c in
  let a = Ssta.arrival r (Circuit.find_exn c "y") in
  (* output rise comes from input fall *)
  close "not swaps rise" 3.0 (Normal.mean a.Ssta.rise);
  close "not swaps fall" 2.0 (Normal.mean a.Ssta.fall);
  close "not swaps rise sigma" 0.25 (Normal.stddev a.Ssta.rise)

let and_gate_circuit () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.And [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  Circuit.Builder.finalize b

let test_ssta_and_gate_clark () =
  let c = and_gate_circuit () in
  let r = Ssta.analyze c in
  let a = Ssta.arrival r (Circuit.find_exn c "y") in
  (* rise = Clark MAX of two standard normals + 1 *)
  close "AND rise mean" (1.0 +. (1.0 /. sqrt Float.pi)) (Normal.mean a.Ssta.rise) ~tol:1e-6;
  (* fall = Clark MIN + 1 = 1 - 1/sqrt(pi) by symmetry *)
  close "AND fall mean" (1.0 -. (1.0 /. sqrt Float.pi)) (Normal.mean a.Ssta.fall) ~tol:1e-6;
  (* the paper's criticism: MIN/MAX shrink the output sigma below 1 *)
  Alcotest.(check bool) "sigma shrinks" true (Normal.stddev a.Ssta.rise < 1.0)

let test_ssta_input_obliviousness () =
  (* SSTA ignores input statistics entirely: nothing to vary, but the
     API admits no spec — assert the analyze signature stays pure by
     checking two runs agree *)
  let c = and_gate_circuit () in
  let a = Ssta.arrival (Ssta.analyze c) (Circuit.find_exn c "y") in
  let b = Ssta.arrival (Ssta.analyze c) (Circuit.find_exn c "y") in
  close "deterministic" (Normal.mean a.Ssta.rise) (Normal.mean b.Ssta.rise)

let test_ssta_variational () =
  let c = buffer_chain 4 in
  let delay _ = Normal.make ~mu:1.0 ~sigma:0.5 in
  let r = Ssta.analyze_variational ~gate_delay:delay c in
  let a = Ssta.arrival r (List.hd (Circuit.primary_outputs c)) in
  close "variational mean" 4.0 (Normal.mean a.Ssta.rise);
  (* variance = 1 (input) + 4 * 0.25 (gates) = 2 *)
  close "variational sigma" (sqrt 2.0) (Normal.stddev a.Ssta.rise) ~tol:1e-9

let test_critical_endpoint () =
  let c = Spsta_experiments.Benchmarks.load "s344" in
  let r = Ssta.analyze c in
  let e = Ssta.critical_endpoint r `Rise in
  (* the critical endpoint's mean dominates every other endpoint *)
  let mean_of x = Normal.mean (Ssta.arrival r x).Ssta.rise in
  List.iter
    (fun other ->
      Alcotest.(check bool) "dominates" true (mean_of e >= mean_of other -. 1e-9))
    (Circuit.endpoints c);
  close "max_arrival matches endpoint" (mean_of e) (Normal.mean (Ssta.max_arrival r `Rise))

let test_xor_uses_both_polarities () =
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_input b "b";
  Circuit.Builder.add_gate b ~output:"y" Gate_kind.Xor [ "a"; "b" ];
  Circuit.Builder.add_output b "y";
  let c = Circuit.Builder.finalize b in
  let rise_in = Normal.make ~mu:0.0 ~sigma:0.1 and fall_in = Normal.make ~mu:5.0 ~sigma:0.1 in
  let r = Ssta.analyze ~input_arrival:{ Ssta.rise = rise_in; fall = fall_in } c in
  let a = Ssta.arrival r (Circuit.find_exn c "y") in
  (* the late falling inputs dominate the XOR settle time *)
  Alcotest.(check bool) "XOR rise sees the late fall" true (Normal.mean a.Ssta.rise > 5.5)

let test_sta_no_endpoints_raises () =
  (* a gate with no primary output and no flip-flop: there is nothing to
     report, and the STA summaries must say so rather than silently
     returning neg_infinity *)
  let b = Circuit.Builder.create () in
  Circuit.Builder.add_input b "a";
  Circuit.Builder.add_gate b ~output:"n1" Gate_kind.Buf [ "a" ];
  let c = Circuit.Builder.finalize b in
  Alcotest.(check (list int)) "no endpoints" [] (Circuit.endpoints c);
  let r = Sta.analyze c in
  let expected = Invalid_argument "Sta.critical_endpoint: circuit has no endpoints" in
  Alcotest.check_raises "critical_endpoint raises" expected (fun () ->
      ignore (Sta.critical_endpoint r));
  Alcotest.check_raises "max_latest raises too" expected (fun () -> ignore (Sta.max_latest r))

let test_sta_parallel_bit_identical () =
  (* corner STA on the shared engine: the levelized ?domains schedule
     must reproduce the sequential bounds exactly *)
  List.iter
    (fun name ->
      let c = Spsta_experiments.Benchmarks.load name in
      let seq = Sta.analyze ~input_bounds:{ Sta.earliest = -3.0; latest = 3.0 } c in
      List.iter
        (fun domains ->
          let par =
            Sta.analyze ~input_bounds:{ Sta.earliest = -3.0; latest = 3.0 } ~domains c
          in
          for g = 0 to Circuit.num_nets c - 1 do
            let a = Sta.bounds seq g and b = Sta.bounds par g in
            close "earliest identical" a.Sta.earliest b.Sta.earliest ~tol:0.0;
            close "latest identical" a.Sta.latest b.Sta.latest ~tol:0.0
          done)
        [ 2; 4 ])
    [ "s27"; "s386" ]

let test_parallel_bit_identical () =
  (* the levelized ?domains schedule must reproduce the sequential
     arrivals exactly, at every net and domain count *)
  List.iter
    (fun name ->
      let c = Spsta_experiments.Benchmarks.load name in
      let seq = Ssta.analyze c in
      List.iter
        (fun domains ->
          let par = Ssta.analyze ~domains c in
          for g = 0 to Circuit.num_nets c - 1 do
            let a = Ssta.arrival seq g and b = Ssta.arrival par g in
            close "rise mean identical" (Normal.mean a.Ssta.rise) (Normal.mean b.Ssta.rise)
              ~tol:0.0;
            close "rise sigma identical" (Normal.stddev a.Ssta.rise) (Normal.stddev b.Ssta.rise)
              ~tol:0.0;
            close "fall mean identical" (Normal.mean a.Ssta.fall) (Normal.mean b.Ssta.fall)
              ~tol:0.0;
            close "fall sigma identical" (Normal.stddev a.Ssta.fall) (Normal.stddev b.Ssta.fall)
              ~tol:0.0
          done)
        [ 2; 4 ])
    [ "s27"; "s386" ]

let suite =
  [
    Alcotest.test_case "STA buffer chain" `Quick test_sta_chain;
    Alcotest.test_case "STA input bounds" `Quick test_sta_input_bounds;
    Alcotest.test_case "STA reconvergent paths" `Quick test_sta_reconvergent;
    Alcotest.test_case "STA no endpoints raises" `Quick test_sta_no_endpoints_raises;
    Alcotest.test_case "STA parallel bit-identical" `Quick test_sta_parallel_bit_identical;
    Alcotest.test_case "SSTA chain moments" `Quick test_ssta_chain_moments;
    Alcotest.test_case "SSTA NOT swaps rise/fall" `Quick test_ssta_not_swaps;
    Alcotest.test_case "SSTA AND gate Clark" `Quick test_ssta_and_gate_clark;
    Alcotest.test_case "SSTA determinism" `Quick test_ssta_input_obliviousness;
    Alcotest.test_case "SSTA variational delays" `Quick test_ssta_variational;
    Alcotest.test_case "SSTA critical endpoint" `Quick test_critical_endpoint;
    Alcotest.test_case "SSTA XOR polarities" `Quick test_xor_uses_both_polarities;
    Alcotest.test_case "SSTA parallel bit-identical" `Quick test_parallel_bit_identical;
  ]
